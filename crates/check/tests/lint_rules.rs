//! Rule tests for the `viderec-lint` engine: every rule fires on a seeded
//! violation, stays quiet on clean code, and respects waivers.

use viderec_check::lint::{atomics_sites, lint_workspace, Finding};

fn files(entries: &[(&str, &str)]) -> Vec<(String, String)> {
    entries
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

// --- atomics-audit ---

const RING_SNIPPET: &str = "pub fn bump(x: &AtomicU64) { x.fetch_add(1, Ordering::Relaxed); }\n";

#[test]
fn unlisted_ordering_site_is_a_finding() {
    let fs = files(&[("crates/trace/src/ring.rs", RING_SNIPPET)]);
    let findings = lint_workspace(&fs, Some("| site | ordering | justification |\n"), None);
    assert_eq!(rules_of(&findings), vec!["atomics-audit"]);
    assert_eq!(findings[0].path, "crates/trace/src/ring.rs");
    assert_eq!(findings[0].line, 1);
}

#[test]
fn listed_and_justified_site_is_clean() {
    let fs = files(&[("crates/trace/src/ring.rs", RING_SNIPPET)]);
    let md = "| site | ordering | justification |\n\
              |---|---|---|\n\
              | `crates/trace/src/ring.rs:1` | `Relaxed` | pure counter, no payload |\n";
    assert!(lint_workspace(&fs, Some(md), None).is_empty());
}

#[test]
fn stale_row_and_empty_justification_are_findings() {
    let fs = files(&[("crates/trace/src/ring.rs", RING_SNIPPET)]);
    // Row 3 matches but has a TODO justification; row 4 points at a site
    // that no longer exists.
    let md = "| site | ordering | justification |\n\
              |---|---|---|\n\
              | `crates/trace/src/ring.rs:1` | `Relaxed` | TODO |\n\
              | `crates/trace/src/ring.rs:99` | `Release` | was real once |\n";
    let findings = lint_workspace(&fs, Some(md), None);
    assert_eq!(rules_of(&findings), vec!["atomics-audit", "atomics-audit"]);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no justification")));
    assert!(findings
        .iter()
        .any(|f| f.path == "ATOMICS.md" && f.line == 4 && f.message.contains("stale")));
}

#[test]
fn wrong_ordering_in_row_counts_as_unlisted_plus_stale() {
    let fs = files(&[("crates/trace/src/ring.rs", RING_SNIPPET)]);
    let md = "| `crates/trace/src/ring.rs:1` | `Release` | wrong variant |\n";
    let findings = lint_workspace(&fs, Some(md), None);
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn orderings_in_comments_strings_and_check_crate_are_out_of_scope() {
    let fs = files(&[
        (
            "crates/trace/src/ring.rs",
            "// Ordering::Relaxed\nconst HELP: &str = \"Ordering::SeqCst\";\n",
        ),
        ("crates/check/src/shim.rs", RING_SNIPPET),
        ("crates/trace/tests/ring.rs", RING_SNIPPET),
    ]);
    assert!(atomics_sites(&fs).is_empty());
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn cmp_ordering_variants_do_not_match() {
    let fs = files(&[(
        "crates/core/src/sort.rs",
        "fn f(a: u32, b: u32) -> Ordering { Ordering::Less }\n",
    )]);
    assert!(atomics_sites(&fs).is_empty());
}

#[test]
fn atomics_sites_reports_path_line_variant() {
    let fs = files(&[("vendor/bytes/src/lib.rs", RING_SNIPPET)]);
    assert_eq!(
        atomics_sites(&fs),
        vec![(
            "vendor/bytes/src/lib.rs".to_string(),
            1,
            "Relaxed".to_string()
        )]
    );
}

// --- serve-no-panic ---

#[test]
fn panic_sites_on_the_serve_path_are_findings() {
    let fs = files(&[(
        "crates/serve/src/engine.rs",
        "fn f(x: Option<u32>) -> u32 {\n\
         \x20   let a = x.unwrap();\n\
         \x20   let b = x.expect(\"present\");\n\
         \x20   if a > b { panic!(\"boom\") }\n\
         \x20   unreachable!()\n\
         }\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(
        rules_of(&findings),
        vec!["serve-no-panic"; 4],
        "{findings:?}"
    );
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![2, 3, 4, 5]
    );
}

#[test]
fn cfg_test_regions_and_waivers_are_exempt() {
    let fs = files(&[(
        "crates/serve/src/engine.rs",
        "fn ok(x: Option<u32>) -> Option<u32> { x }\n\
         // viderec-lint: allow(serve-no-panic) — startup-only config parse, not request path\n\
         fn startup(x: Option<u32>) -> u32 { x.unwrap() }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   fn check(x: Option<u32>) { x.unwrap(); }\n\
         }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn unwrap_or_else_is_not_unwrap() {
    let fs = files(&[(
        "crates/serve/src/engine.rs",
        "fn f(m: std::sync::Mutex<u32>) -> u32 {\n\
         \x20   *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n\
         }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- wallclock ---

#[test]
fn instant_now_in_a_deterministic_crate_is_a_finding() {
    let fs = files(&[(
        "crates/emd/src/flow.rs",
        "fn t() -> std::time::Instant { Instant::now() }\n",
    )]);
    assert_eq!(
        rules_of(&lint_workspace(&fs, None, None)),
        vec!["wallclock"]
    );
}

#[test]
fn instant_now_in_trace_serve_or_check_is_fine() {
    let fs = files(&[
        ("crates/trace/src/tracer.rs", "fn t() { Instant::now(); }\n"),
        ("crates/serve/src/engine.rs", "fn t() { Instant::now(); }\n"),
        ("crates/check/src/shim.rs", "fn t() { Instant::now(); }\n"),
    ]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn wallclock_waiver_on_previous_line_suppresses() {
    let fs = files(&[(
        "crates/eval/src/experiment.rs",
        "// viderec-lint: allow(wallclock) — experiment harness measures real elapsed time\n\
         fn t() { Instant::now(); }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- reader-locks ---

#[test]
fn mutex_in_a_reader_crate_is_a_finding() {
    let fs = files(&[(
        "crates/index/src/table.rs",
        "use std::sync::Mutex;\nuse std::sync::RwLock;\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(
        rules_of(&findings),
        vec!["reader-locks", "reader-locks"],
        "one per identifier occurrence: {findings:?}"
    );
}

#[test]
fn mutex_in_serve_or_trace_is_allowed() {
    let fs = files(&[
        ("crates/serve/src/snapshot.rs", "use std::sync::Mutex;\n"),
        ("crates/trace/src/export.rs", "use std::sync::Mutex;\n"),
    ]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- vendor-drift ---

const CROSSBEAM_STUB: &str = "pub mod channel;\npub fn scope() {}\n";

#[test]
fn reference_to_a_declared_vendor_item_is_clean() {
    let fs = files(&[
        ("vendor/crossbeam/src/lib.rs", CROSSBEAM_STUB),
        (
            "crates/serve/src/pipeline.rs",
            "use crossbeam::channel;\nfn f() { crossbeam::scope(); }\n",
        ),
    ]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn reference_to_a_missing_vendor_item_is_a_finding() {
    let fs = files(&[
        ("vendor/crossbeam/src/lib.rs", CROSSBEAM_STUB),
        ("crates/serve/src/pipeline.rs", "use crossbeam::epoch;\n"),
    ]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(rules_of(&findings), vec!["vendor-drift"]);
    assert!(findings[0].message.contains("crossbeam::epoch"));
}

#[test]
fn vendor_internal_references_are_not_checked() {
    // The stub referencing itself is its own business.
    let fs = files(&[(
        "vendor/crossbeam/src/lib.rs",
        "pub mod channel;\nfn f() { crossbeam::whatever(); }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- corpus-enumeration ---

#[test]
fn enumeration_call_site_on_a_recommend_path_is_a_finding() {
    let fs = files(&[(
        "crates/core/src/recommender.rs",
        "fn f(&self) { for _ in self.all_video_indices() {} }\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(rules_of(&findings), vec!["corpus-enumeration"]);
    assert!(findings[0].message.contains("all_video_indices"));
}

#[test]
fn enumeration_definition_is_not_a_call_site() {
    let fs = files(&[(
        "crates/core/src/recommender.rs",
        "pub(crate) fn all_video_indices(&self) -> std::ops::Range<u32> {\n\
         \x20   0..self.num_videos() as u32\n\
         }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn videos_len_on_a_recommend_path_is_a_finding() {
    let fs = files(&[(
        "crates/core/src/parallel.rs",
        "fn f(&self) -> usize { self.videos.len() }\n",
    )]);
    assert_eq!(
        rules_of(&lint_workspace(&fs, None, None)),
        vec!["corpus-enumeration"]
    );
}

#[test]
fn enumeration_outside_the_recommend_paths_is_out_of_scope() {
    let fs = files(&[(
        "crates/core/src/maintenance.rs",
        "fn f(&self) -> usize { self.videos.len() }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn multi_line_waiver_comment_covers_the_line_after_the_run() {
    // The marker opens a two-line comment; its reach extends through the
    // comment run to the code right below.
    let fs = files(&[(
        "crates/core/src/recommender.rs",
        "// viderec-lint: allow(corpus-enumeration) — the certificate sweep\n\
         // is bound-only and never scores a video.\n\
         fn f(&self) { for _ in self.all_video_indices() {} }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- emd-direct-call ---

#[test]
fn direct_emd_1d_call_on_a_hot_path_is_a_finding() {
    let fs = files(&[(
        "crates/core/src/prune.rs",
        "fn f(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 { emd_1d(a, b) }\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(rules_of(&findings), vec!["emd-direct-call"]);
    assert!(findings[0].message.contains("emd_1d_soa"));
}

#[test]
fn soa_kernel_calls_are_not_direct_emd_1d_calls() {
    let fs = files(&[(
        "crates/serve/src/server.rs",
        "fn f(av: &[f64], aw: &[f64]) -> f64 { emd_1d_soa(av, aw, av, aw) }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn emd_1d_in_a_test_region_is_exempt() {
    let fs = files(&[(
        "crates/core/src/prune.rs",
        "#[cfg(test)]\n\
         mod tests {\n\
         \x20   fn oracle(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 { emd_1d(a, b) }\n\
         }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn emd_1d_outside_the_hot_paths_is_out_of_scope() {
    let fs = files(&[(
        "crates/eval/src/experiments.rs",
        "fn f(a: &[(f64, f64)]) -> f64 { emd_1d(a, a) }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn waived_emd_1d_call_is_allowed() {
    let fs = files(&[(
        "crates/core/src/prune.rs",
        "// viderec-lint: allow(emd-direct-call) — one-shot diagnostic, not a\n\
         // scoring loop.\n\
         fn f(a: &[(f64, f64)]) -> f64 { emd_1d(a, a) }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- waiver syntax ---

#[test]
fn waiver_without_reason_is_itself_a_finding() {
    let fs = files(&[(
        "crates/index/src/table.rs",
        "// viderec-lint: allow(reader-locks)\nuse std::sync::Mutex;\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    // The reasonless waiver does not suppress, and is flagged on its own.
    assert_eq!(rules_of(&findings), vec!["waiver", "reader-locks"]);
    assert!(findings[0].message.contains("no reason"));
}

#[test]
fn waiver_for_an_unknown_rule_is_a_finding() {
    let fs = files(&[(
        "crates/core/src/lib.rs",
        "// viderec-lint: allow(made-up-rule) — because\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(rules_of(&findings), vec!["waiver"]);
    assert!(findings[0].message.contains("made-up-rule"));
}

#[test]
fn quoting_waiver_syntax_mid_comment_is_not_a_waiver() {
    // Docs that mention the syntax in prose (like lint.rs's own module docs)
    // must neither waive anything nor be flagged as malformed.
    let fs = files(&[(
        "crates/index/src/table.rs",
        "//! Use `viderec-lint: allow(reader-locks) — why` to waive.\n\
         use std::sync::Mutex;\n",
    )]);
    assert_eq!(
        rules_of(&lint_workspace(&fs, None, None)),
        vec!["reader-locks"]
    );
}

#[test]
fn waiver_only_covers_its_own_rule_and_adjacent_lines() {
    let fs = files(&[(
        "crates/index/src/table.rs",
        "// viderec-lint: allow(wallclock) — wrong rule for the line below\n\
         use std::sync::Mutex;\n\
         \n\
         use std::sync::RwLock;\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    // Both lock idents still fire: the waiver names a different rule, and
    // line 4 is out of the waiver's two-line reach anyway.
    assert_eq!(rules_of(&findings), vec!["reader-locks", "reader-locks"]);
}

// --- durable-writes ---

#[test]
fn fs_write_outside_the_wal_crate_is_a_finding() {
    let fs = files(&[(
        "crates/serve/src/server.rs",
        "fn f(p: &std::path::Path) { std::fs::write(p, b\"x\").ok(); }\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(rules_of(&findings), vec!["durable-writes"]);
    assert!(findings[0].message.contains("fs::write"));
}

#[test]
fn file_create_and_open_options_are_findings_too() {
    let fs = files(&[(
        "crates/eval/src/report.rs",
        "use std::fs::{File, OpenOptions};\n\
         fn f(p: &std::path::Path) {\n\
         \x20   let _ = File::create(p);\n\
         \x20   let _ = OpenOptions::new().append(true).open(p);\n\
         }\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(
        rules_of(&findings),
        vec!["durable-writes", "durable-writes"]
    );
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[1].line, 4);
}

#[test]
fn wal_crate_and_reads_and_tests_are_exempt() {
    let fs = files(&[
        (
            "crates/wal/src/log.rs",
            "fn f(p: &std::path::Path) { std::fs::rename(p, p).ok(); }\n",
        ),
        (
            "crates/serve/src/config.rs",
            "fn f(p: &std::path::Path) -> Vec<u8> { std::fs::read(p).unwrap_or_default() }\n",
        ),
        (
            "crates/bench/src/bin/tool.rs",
            "#[cfg(test)]\n\
             mod tests {\n\
             \x20   fn scratch(p: &std::path::Path) { std::fs::create_dir_all(p).ok(); }\n\
             }\n",
        ),
    ]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- signal-safe ---

#[test]
fn allocation_formatting_and_panics_in_the_handler_module_are_findings() {
    let fs = files(&[(
        "crates/prof/src/signal.rs",
        "fn handler() {\n\
         \x20   let msg = format!(\"tick\");\n\
         \x20   let mut frames: Vec<u64> = Vec::new();\n\
         \x20   frames.first().unwrap();\n\
         \x20   panic!(\"{msg}\");\n\
         }\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(rules_of(&findings), vec!["signal-safe"; 5], "{findings:?}");
    assert!(findings[0].message.contains("format!"));
    assert!(findings.iter().any(|f| f.message.contains("Vec")));
    assert!(findings.iter().any(|f| f.message.contains(".unwrap()")));
    assert!(findings.iter().any(|f| f.message.contains("panic!")));
}

#[test]
fn lock_types_and_blocking_calls_in_the_handler_module_are_findings() {
    let fs = files(&[(
        "crates/prof/src/signal.rs",
        "use std::sync::Mutex;\n\
         fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    // Line 1: the Mutex ident in the use. Line 2: Mutex in the signature,
    // the .lock() call, and the .unwrap() on its result.
    assert_eq!(rules_of(&findings), vec!["signal-safe"; 4], "{findings:?}");
}

#[test]
fn the_handler_modules_real_vocabulary_is_clean() {
    // Atomics, raw pointer work, and hand-declared syscalls — what the
    // module actually uses — must not trip the rule.
    let fs = files(&[(
        "crates/prof/src/signal.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         static DROPPED: AtomicU64 = AtomicU64::new(0);\n\
         fn record(pc: u64, arena: &[AtomicU64]) {\n\
         \x20   match arena.first() {\n\
         \x20       Some(slot) => slot.store(pc, Ordering::Relaxed),\n\
         \x20       None => { DROPPED.fetch_add(1, Ordering::Relaxed); }\n\
         \x20   }\n\
         }\n",
    )]);
    let md = "| site | ordering | justification |\n\
              |---|---|---|\n\
              | `crates/prof/src/signal.rs:5` | `Relaxed` | sample word, published later |\n\
              | `crates/prof/src/signal.rs:6` | `Relaxed` | drop counter, no payload |\n";
    assert!(lint_workspace(&fs, Some(md), None).is_empty());
}

#[test]
fn signal_safety_applies_only_to_the_handler_module() {
    // The profiler's reader side allocates freely — out of scope.
    let fs = files(&[(
        "crates/prof/src/profiler.rs",
        "fn fold() -> String { format!(\"{:?}\", Vec::<u64>::new()) }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn waived_and_test_region_signal_sites_are_exempt() {
    let fs = files(&[(
        "crates/prof/src/signal.rs",
        "// viderec-lint: allow(signal-safe) — install-time only; runs before\n\
         // the handler is armed, never inside it.\n\
         fn install() -> String { String::new() }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   fn check(x: Option<u32>) { assert_eq!(x.unwrap(), 1); }\n\
         }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn waived_report_writer_is_allowed() {
    let fs = files(&[(
        "crates/bench/src/bin/report.rs",
        "// viderec-lint: allow(durable-writes) — bench report, not durable state\n\
         fn f(p: &std::path::Path, s: &str) { std::fs::write(p, s).ok(); }\n",
    )]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- unsafe-audit ---

const UNSAFE_SNIPPET: &str = "\
fn f() {
    // SAFETY: the slice is non-empty by the caller's contract.
    unsafe { poke() }
}
";

#[test]
fn unsafe_block_without_safety_comment_is_a_finding() {
    let fs = files(&[(
        "crates/prof/src/raw.rs",
        "fn f() {\n    unsafe { poke() }\n}\n",
    )]);
    let md = "| `crates/prof/src/raw.rs:2` | `block` | justified elsewhere |\n";
    let findings = lint_workspace(&fs, None, Some(md));
    assert_eq!(rules_of(&findings), vec!["unsafe-audit"]);
    assert!(findings[0].message.contains("SAFETY"), "{findings:?}");
    assert_eq!(findings[0].line, 2);
}

#[test]
fn unsafe_site_missing_from_the_table_is_a_finding() {
    let fs = files(&[("crates/prof/src/raw.rs", UNSAFE_SNIPPET)]);
    let findings = lint_workspace(&fs, None, Some("| site | kind | justification |\n"));
    assert_eq!(rules_of(&findings), vec!["unsafe-audit"]);
    assert!(
        findings[0].message.contains("--print-safety-rows"),
        "{findings:?}"
    );
}

#[test]
fn commented_and_tabled_unsafe_site_is_clean() {
    let fs = files(&[("crates/prof/src/raw.rs", UNSAFE_SNIPPET)]);
    let md = "| site | kind | justification |\n\
              |---|---|---|\n\
              | `crates/prof/src/raw.rs:3` | `block` | caller-contract slice access |\n";
    assert!(lint_workspace(&fs, None, Some(md)).is_empty());
}

#[test]
fn stale_and_todo_safety_rows_are_findings() {
    let fs = files(&[("crates/prof/src/raw.rs", UNSAFE_SNIPPET)]);
    let md = "| `crates/prof/src/raw.rs:3` | `block` | TODO |\n\
              | `crates/prof/src/raw.rs:99` | `fn` | moved away |\n";
    let findings = lint_workspace(&fs, None, Some(md));
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no justification")));
    assert!(findings
        .iter()
        .any(|f| f.path == "SAFETY.md" && f.message.contains("stale")));
}

#[test]
fn unsafe_audit_cannot_be_waived() {
    // A waiver naming unsafe-audit is itself a finding (unwaivable rule),
    // and the unsafe-audit finding still fires: the table is the only
    // escape hatch.
    let fs = files(&[(
        "crates/prof/src/raw.rs",
        "// viderec-lint: allow(unsafe-audit) — trust me\n\
         fn f() {\n    unsafe { poke() }\n}\n",
    )]);
    let findings = lint_workspace(&fs, None, None);
    assert!(rules_of(&findings).contains(&"waiver"), "{findings:?}");
    assert!(
        rules_of(&findings).contains(&"unsafe-audit"),
        "{findings:?}"
    );
}

// --- transitive serve-no-panic over the call graph ---

const SERVE_ROOT_SNIPPET: &str = "\
pub fn handle_connection() {
    viderec_core::topk::rank();
}
";

#[test]
fn panic_reachable_from_the_request_path_is_a_finding_with_a_chain() {
    let fs = files(&[
        ("crates/serve/src/server.rs", SERVE_ROOT_SNIPPET),
        (
            "crates/core/src/topk.rs",
            "pub fn rank() { helper(); }\nfn helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
    ]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(rules_of(&findings), vec!["serve-no-panic"], "{findings:?}");
    assert_eq!(findings[0].path, "crates/core/src/topk.rs");
    assert_eq!(findings[0].line, 2);
    assert!(
        findings[0]
            .message
            .contains("viderec_serve::server::handle_connection → viderec_core::topk::rank"),
        "{findings:?}"
    );
}

#[test]
fn unreachable_panic_in_the_same_crate_is_not_flagged() {
    let fs = files(&[
        ("crates/serve/src/server.rs", SERVE_ROOT_SNIPPET),
        (
            "crates/core/src/topk.rs",
            "pub fn rank() {}\nfn cold(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
    ]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn waiver_at_the_reachable_site_silences_the_transitive_finding() {
    let fs = files(&[
        ("crates/serve/src/server.rs", SERVE_ROOT_SNIPPET),
        (
            "crates/core/src/topk.rs",
            "pub fn rank(x: Option<u32>) -> u32 {\n\
             \x20   // viderec-lint: allow(serve-no-panic) — x is Some by the\n\
             \x20   // caller's length check.\n\
             \x20   x.unwrap()\n\
             }\n",
        ),
    ]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

#[test]
fn fn_line_waiver_covers_the_whole_reachable_body() {
    let fs = files(&[
        ("crates/serve/src/server.rs", SERVE_ROOT_SNIPPET),
        (
            "crates/core/src/topk.rs",
            "// viderec-lint: allow(serve-no-panic) — every expect below is a\n\
             // checked heap invariant.\n\
             pub fn rank(x: Option<u32>, y: Option<u32>) -> u32 {\n\
             \x20   x.unwrap() + y.unwrap()\n\
             }\n",
        ),
    ]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}

// --- transitive signal-safe over the call graph ---

const HANDLER_ROOT_SNIPPET: &str = "\
pub fn handler() {
    viderec_trace::stage::note();
}
";

#[test]
fn allocation_reachable_from_the_signal_handler_is_a_finding() {
    let fs = files(&[
        ("crates/prof/src/signal.rs", HANDLER_ROOT_SNIPPET),
        (
            "crates/trace/src/stage.rs",
            "pub fn note() -> String { format!(\"tick\") }\n",
        ),
    ]);
    let findings = lint_workspace(&fs, None, None);
    assert_eq!(rules_of(&findings), vec!["signal-safe"], "{findings:?}");
    assert_eq!(findings[0].path, "crates/trace/src/stage.rs");
    assert!(
        findings[0].message.contains("SIGPROF handler"),
        "{findings:?}"
    );
}

#[test]
fn clean_transitive_handler_vocabulary_stays_quiet() {
    let fs = files(&[
        ("crates/prof/src/signal.rs", HANDLER_ROOT_SNIPPET),
        (
            "crates/trace/src/stage.rs",
            "pub fn note() { COUNT.fetch_add(1, Ordering::Relaxed); }\n",
        ),
    ]);
    // The Ordering site needs a table row; keep the fixture focused on
    // signal-safety by supplying one.
    let md = "| `crates/trace/src/stage.rs:1` | `Relaxed` | pure counter |\n";
    assert!(lint_workspace(&fs, Some(md), None).is_empty());
}

#[test]
fn signal_unsafe_call_outside_the_reachable_set_is_not_flagged() {
    let fs = files(&[
        ("crates/prof/src/signal.rs", HANDLER_ROOT_SNIPPET),
        (
            "crates/trace/src/stage.rs",
            "pub fn note() {}\npub fn report() -> String { format!(\"cold path\") }\n",
        ),
    ]);
    assert!(lint_workspace(&fs, None, None).is_empty());
}
