//! Model-checks the vendored bounded MPMC channel
//! (`vendor/crossbeam/src/channel.rs` compiled verbatim against the
//! instrumented shim): exactly-once delivery under contention, disconnect
//! semantics of `recv`/`recv_timeout`, and blocked-sender wakeups. The
//! lossy-condvar build of the *same source* proves the checker catches a
//! lost disconnect broadcast as a deadlock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use viderec_check::broken_channel::channel as broken;
use viderec_check::shipped_channel::channel::{bounded, RecvError, RecvTimeoutError, TryRecvError};
use viderec_check::{thread, Model};

#[test]
fn two_senders_one_slot_deliver_exactly_once_then_disconnect() {
    let report = Model::new().check(|| {
        let (tx, rx) = bounded::<u64>(1);
        let tx2 = tx.clone();
        // Both senders contend for the single slot; one of them must block
        // on not_full until the receiver drains.
        let a = thread::spawn(move || {
            tx.send(1).unwrap();
        });
        let b = thread::spawn(move || {
            tx2.send(2).unwrap();
        });
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert_eq!(first + second, 3, "lost or duplicated message");
        assert_ne!(first, second);
        a.join();
        b.join();
        // Every sender is gone and the queue is drained.
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    });
    assert!(report.complete, "channel state space should be exhaustible");
    assert!(report.schedules > 10);
}

#[test]
fn recv_sees_queued_message_before_surfacing_disconnect() {
    let report = Model::new().check(|| {
        let (tx, rx) = bounded::<u64>(1);
        let sender = thread::spawn(move || {
            tx.send(42).unwrap();
            // tx drops here: disconnect races the delivery below.
        });
        // Crossbeam contract: the queued message is always delivered first,
        // no matter how the drop interleaves; only then does Err surface.
        assert_eq!(rx.recv(), Ok(42));
        assert_eq!(rx.recv(), Err(RecvError));
        sender.join();
    });
    assert!(report.complete);
}

#[test]
fn disconnect_completed_before_recv_timeout_is_never_reported_as_timeout() {
    let report = Model::new().check(|| {
        let (tx, rx) = bounded::<u64>(1);
        let dropper = thread::spawn(move || {
            drop(tx);
        });
        // The join makes the disconnect happen-before the call: Timeout
        // would claim "a sender might still show up", which is a lie here.
        dropper.join();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    });
    assert!(report.complete);
}

#[test]
fn recv_timeout_racing_a_disconnect_errs_but_never_hangs_or_delivers() {
    let report = Model::new().check(|| {
        let (tx, rx) = bounded::<u64>(1);
        let dropper = thread::spawn(move || {
            drop(tx);
        });
        // Mid-race either outcome is honest (the timeout may beat the
        // disconnect), but it must be an Err and it must return.
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert!(
            r == Err(RecvTimeoutError::Disconnected) || r == Err(RecvTimeoutError::Timeout),
            "unexpected result: {r:?}"
        );
        dropper.join();
        // Once the drop is joined, the verdict is unambiguous.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    });
    assert!(report.complete);
}

#[test]
fn losing_the_disconnect_broadcast_deadlocks_a_blocked_recv_and_is_caught() {
    // Same channel source, but notify_all wakes nobody: a receiver that
    // parks before the last sender drops never learns the channel died.
    let err = catch_unwind(AssertUnwindSafe(|| {
        Model::new().check(|| {
            let (tx, rx) = broken::bounded::<u64>(1);
            let dropper = thread::spawn(move || {
                drop(tx);
            });
            let _ = rx.recv(); // must deadlock in some schedule
            dropper.join();
        });
    }))
    .expect_err("lost disconnect broadcast must be caught as a deadlock");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("deadlock"), "wrong failure: {msg}");
    assert!(msg.contains("failing schedule"), "no schedule in: {msg}");
}
