//! Turns on `--cfg viderec_check` for every target of this package.
//!
//! The shipped concurrency sources (`crates/trace/src/ring.rs`,
//! `crates/serve/src/snapshot.rs`, `vendor/crossbeam/src/channel.rs`) are
//! compiled a second time into this crate via `#[path]`, against the
//! instrumented `sync` shim instead of `std`. The cfg marks that build so
//! the inclusion modules are greppable and so shared sources could branch on
//! it if they ever need to.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(viderec_check)");
    println!("cargo::rustc-cfg=viderec_check");
}
