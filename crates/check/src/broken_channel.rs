//! The vendored bounded channel compiled against a **lossy** condvar whose
//! `notify_all` wakes nobody (see [`crate::shim::LossyCondvar`]). The
//! disconnect broadcast in the last `Sender`'s `Drop` is lost, so a blocked
//! `recv()` sleeps forever — the model checker must find that deadlock.

/// A `sync` facade that silently swaps in the lossy condvar.
pub mod sync {
    pub use crate::shim::LossyCondvar as Condvar;
    pub use crate::shim::{Arc, Instant, Mutex};
}

#[path = "../../../vendor/crossbeam/src/channel.rs"]
pub mod channel;
