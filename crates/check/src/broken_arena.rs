//! The same shipped sample arena as [`crate::shipped_arena`], compiled
//! against a broken `AtomicUsize` whose every operation is demoted to
//! `Relaxed`. That strips the `Release` off the `committed` publish, so the
//! reader's `Acquire` rendezvous no longer synchronizes with writers and
//! record words can read back stale zeroes — the torn/stale sample that
//! `tests/model_arena.rs` asserts the checker catches.

/// The weakened `sync` facade: `AtomicUsize` is the demoted variant, so the
/// `committed` cursor (and `head`) lose their orderings; the `AtomicU64`
/// record words keep honest `Relaxed` semantics, which is all they ever had.
pub mod sync {
    pub use crate::shim::DemotedAtomicUsize as AtomicUsize;
    pub use crate::shim::{AtomicU64, Ordering};
}

#[path = "../../prof/src/arena.rs"]
pub mod arena;
