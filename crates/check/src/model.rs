//! The deterministic interleaving explorer ("loom-lite").
//!
//! [`Model::check`] runs a closure many times, once per *schedule*. Model
//! threads (spawned through [`crate::thread::spawn`]) are real OS threads,
//! but a baton protocol guarantees that **at most one of them executes at any
//! instant**: every visible operation (atomic access, mutex acquire/release,
//! condvar wait/notify, spawn/join, clock read) waits for the baton, applies
//! its effect under the global state lock, then hands the baton to a
//! scheduler-chosen runnable thread. Each such decision — and each choice of
//! *which store an atomic load reads from* — is a recorded choice point, so a
//! schedule is just the vector of choices taken, and the explorer can
//! enumerate schedules by depth-first search with prefix replay, walk them
//! pseudo-randomly from a seed, or replay one exactly from its printed
//! choice string.
//!
//! ## Memory model
//!
//! A C11-subset model, not plain sequential consistency: every atomic keeps
//! its full store history, and a `Relaxed`/`Acquire` load may read any store
//! not ruled out by coherence (per-thread last-seen index) or happens-before
//! (vector clocks: an `Acquire` load of a `Release` store joins the writer's
//! clock at the store). This is what lets the checker catch missing
//! `Release`/`Acquire` pairs — e.g. a seqlock version published with a
//! `Relaxed` store lets readers observe the new version with stale payload
//! words, which an interleaving-only model would miss. `SeqCst` is modeled
//! conservatively as AcqRel plus "reads the latest store"; the primitives
//! under test only rely on acquire/release edges.
//!
//! ## Bounds
//!
//! * at most [`MAX_THREADS`] model threads per execution;
//! * DFS preempts a runnable thread at most `max_preemptions` times per
//!   schedule (context-bounded search, CHESS-style); forced switches at
//!   blocking operations are free;
//! * a schedule budget (`max_schedules`) aborts exploration loudly rather
//!   than spinning forever on a state-space blowup.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Maximum number of model threads (including the root) per execution.
pub const MAX_THREADS: usize = 4;

/// Fixed-width vector clock, one component per possible model thread.
pub(crate) type VClock = [u32; MAX_THREADS];

fn join_clock(into: &mut VClock, from: &VClock) {
    for (a, b) in into.iter_mut().zip(from.iter()) {
        *a = (*a).max(*b);
    }
}

/// Panic payload used to unwind model threads once an execution is aborting.
/// Never reported as a failure; the first *real* panic (or deadlock) is.
pub(crate) struct AbortToken;

/// One recorded decision. `alts == 1` entries are forced moves kept in the
/// trace so replay indices stay aligned with exploration.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    label: &'static str,
    chosen: u16,
    alts: u16,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCond(usize),
    BlockedJoin(usize),
    Finished,
}

pub(crate) struct ThreadSlot {
    status: Status,
    /// Set when a condvar wait ended by timeout (vs notification).
    timed_out: bool,
}

/// One store in an atomic's history.
pub(crate) struct StoreRec {
    pub(crate) value: u64,
    /// Thread that performed the store.
    writer: usize,
    /// The writer's own clock component at the store; a reader whose clock
    /// covers it can no longer read anything older (happens-before floor).
    when_writer: u32,
    /// For `Release`-or-stronger stores: the clock an `Acquire` load joins.
    /// RMWs continue the release sequence by unioning the previous head.
    release: Option<VClock>,
}

pub(crate) struct AtomicState {
    pub(crate) stores: Vec<StoreRec>,
    /// Coherence floor per thread: index of the newest store each thread has
    /// read or written; loads never go backwards from it.
    last_seen: [usize; MAX_THREADS],
}

pub(crate) struct MutexState {
    holder: Option<usize>,
    /// Clock released by the last unlock; joined on the next acquire.
    clock: VClock,
}

pub(crate) struct CvState {
    /// Waiting threads with their optional timeout deadline (model µs).
    waiters: Vec<(usize, Option<u64>)>,
}

#[derive(Clone, Copy)]
pub(crate) enum Mode {
    /// Depth-first: beyond the replayed prefix always take alternative 0.
    Dfs,
    /// Seeded pseudo-random walk beyond the prefix.
    Random,
}

/// What went wrong in a failing schedule.
pub(crate) struct Failure {
    message: String,
    /// The choice trace at the moment of failure (post-failure cleanup ops
    /// are excluded so the printed schedule replays to the same point).
    trace: Vec<Choice>,
}

pub(crate) struct State {
    mode: Mode,
    prefix: Vec<u16>,
    trace: Vec<Choice>,
    threads: Vec<ThreadSlot>,
    vclocks: Vec<VClock>,
    active: usize,
    /// Logical time in model microseconds; advances one per visible op and
    /// jumps forward when a timeout fires. Backs the shim `Instant`.
    pub(crate) step: u64,
    preemptions: u32,
    max_preemptions: u32,
    pub(crate) atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CvState>,
    finished: usize,
    aborting: bool,
    failure: Option<Failure>,
    rng: u64,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Shared per-episode execution: the state lock plus the baton condvar.
pub(crate) struct Execution {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| c.borrow().clone()).expect(
        "viderec-check shim primitive used outside Model::check \
         (the check::sync types only work inside a model execution)",
    )
}

/// True while the calling thread is unwinding: shim operations must then
/// degrade to direct, non-scheduling effects so `Drop` impls never block or
/// double-panic.
pub(crate) fn degraded() -> bool {
    std::thread::panicking()
}

fn lock_state(exec: &Execution) -> MutexGuard<'_, State> {
    // Model threads can panic while holding this lock (replay-divergence
    // asserts); recover from poison instead of cascading.
    exec.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Record a choice and return the selected alternative.
pub(crate) fn choose(st: &mut State, label: &'static str, alts: usize) -> usize {
    debug_assert!(alts >= 1 && alts <= u16::MAX as usize);
    let depth = st.trace.len();
    let chosen = if depth < st.prefix.len() {
        st.prefix[depth] as usize
    } else {
        match st.mode {
            Mode::Dfs => 0,
            Mode::Random => {
                st.rng = st
                    .rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((st.rng >> 33) as usize) % alts
            }
        }
    };
    assert!(
        chosen < alts,
        "viderec-check: replay diverged at choice {depth} ({label}: \
         alternative {chosen} requested but only {alts} available); the \
         program under test is not deterministic between runs"
    );
    st.trace.push(Choice {
        label,
        chosen: chosen as u16,
        alts: alts as u16,
    });
    chosen
}

impl Execution {
    fn new(prefix: Vec<u16>, mode: Mode, max_preemptions: u32, rng: u64) -> Self {
        Execution {
            state: Mutex::new(State {
                mode,
                prefix,
                trace: Vec::new(),
                threads: Vec::new(),
                vclocks: Vec::new(),
                active: 0,
                step: 0,
                preemptions: 0,
                max_preemptions,
                atomics: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                finished: 0,
                aborting: false,
                failure: None,
                rng,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until this thread holds the baton. Err means the execution is
    /// aborting: the caller must drop the guard and panic `AbortToken`.
    #[allow(clippy::result_large_err)]
    fn wait_turn<'e>(
        &'e self,
        mut st: MutexGuard<'e, State>,
        me: usize,
    ) -> Result<MutexGuard<'e, State>, MutexGuard<'e, State>> {
        loop {
            if st.aborting {
                return Err(st);
            }
            if st.active == me {
                return Ok(st);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`wait_turn`], but additionally requires the thread to have been
    /// made `Runnable` again (wake-up after a blocking operation).
    #[allow(clippy::result_large_err)]
    fn wait_runnable_turn<'e>(
        &'e self,
        mut st: MutexGuard<'e, State>,
        me: usize,
    ) -> Result<MutexGuard<'e, State>, MutexGuard<'e, State>> {
        loop {
            if st.aborting {
                return Err(st);
            }
            if st.active == me && st.threads[me].status == Status::Runnable {
                return Ok(st);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Record a failure, flip the execution into abort mode and wake
    /// everyone. Does not panic; callers decide how to unwind.
    fn fail(&self, st: &mut State, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                message,
                trace: st.trace.clone(),
            });
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Pick the next thread to run after `me` completed a visible op (or
    /// blocked / finished). Applies the preemption bound, records the
    /// decision, and wakes the chosen thread. Falls back to firing the
    /// earliest condvar timeout when nothing is runnable; reports a deadlock
    /// failure when nothing is runnable and no timeout is pending.
    fn handoff(&self, st: &mut State, me: usize) {
        if st.aborting {
            return;
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            self.no_runnable(st);
            return;
        }
        let me_runnable = st.threads[me].status == Status::Runnable;
        let allowed: Vec<usize> = if me_runnable {
            if st.preemptions >= st.max_preemptions {
                vec![me]
            } else {
                let mut v = vec![me];
                v.extend(runnable.iter().copied().filter(|&t| t != me));
                v
            }
        } else {
            runnable
        };
        let pick = if allowed.len() > 1 {
            allowed[choose(st, "sched", allowed.len())]
        } else {
            allowed[0]
        };
        if me_runnable && pick != me {
            st.preemptions += 1;
        }
        st.active = pick;
        self.cv.notify_all();
    }

    /// All threads are blocked or finished. If every thread is finished the
    /// episode is simply over. Otherwise fire the earliest pending condvar
    /// timeout; with none pending, this is a real deadlock.
    fn no_runnable(&self, st: &mut State) {
        if st.finished == st.threads.len() {
            self.cv.notify_all();
            return;
        }
        let mut earliest: Option<(u64, usize, usize)> = None; // (deadline, cv, tid)
        for (cv_id, cv) in st.condvars.iter().enumerate() {
            for &(tid, dl) in &cv.waiters {
                if let Some(dl) = dl {
                    if earliest.is_none_or(|(best, _, _)| dl < best) {
                        earliest = Some((dl, cv_id, tid));
                    }
                }
            }
        }
        if let Some((dl, cv_id, tid)) = earliest {
            st.condvars[cv_id].waiters.retain(|&(t, _)| t != tid);
            st.step = st.step.max(dl);
            st.threads[tid].timed_out = true;
            st.threads[tid].status = Status::Runnable;
            st.active = tid;
            self.cv.notify_all();
            return;
        }
        let detail: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .map(|(t, slot)| format!("thread {t}: {:?}", slot.status))
            .collect();
        self.fail(
            st,
            format!(
                "deadlock: every live thread is blocked [{}]",
                detail.join(", ")
            ),
        );
    }
}

/// Run one visible operation: wait for the baton, advance logical time and
/// this thread's clock, apply `body` under the state lock, then hand off.
/// During unwind (`Drop` impls after a panic) `degrade` is applied directly
/// with no scheduling so cleanup can never block or re-panic.
pub(crate) fn with_op<R>(
    body: impl FnOnce(&mut State, usize) -> R,
    degrade: impl FnOnce(&mut State, usize) -> R,
) -> R {
    let (exec, me) = current();
    if degraded() {
        let mut st = lock_state(&exec);
        let r = degrade(&mut st, me);
        exec.cv.notify_all();
        return r;
    }
    let st = lock_state(&exec);
    let mut st = match exec.wait_turn(st, me) {
        Ok(st) => st,
        Err(st) => {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
    };
    st.step += 1;
    st.vclocks[me][me] += 1;
    let r = body(&mut st, me);
    exec.handoff(&mut st, me);
    let abort = st.aborting;
    drop(st);
    if abort {
        std::panic::panic_any(AbortToken);
    }
    r
}

// ---------------------------------------------------------------------------
// Registration (primitive construction)
// ---------------------------------------------------------------------------

pub(crate) fn register_atomic(initial: u64) -> usize {
    let reg = |st: &mut State, me: usize| {
        let id = st.atomics.len();
        let when = st.vclocks.get(me).map_or(0, |c| c[me]);
        st.atomics.push(AtomicState {
            stores: vec![StoreRec {
                value: initial,
                writer: me,
                when_writer: when,
                release: None,
            }],
            last_seen: [0; MAX_THREADS],
        });
        id
    };
    with_op(reg, reg)
}

pub(crate) fn register_mutex() -> usize {
    let reg = |st: &mut State, _me: usize| {
        let id = st.mutexes.len();
        st.mutexes.push(MutexState {
            holder: None,
            clock: [0; MAX_THREADS],
        });
        id
    };
    with_op(reg, reg)
}

pub(crate) fn register_condvar() -> usize {
    let reg = |st: &mut State, _me: usize| {
        let id = st.condvars.len();
        st.condvars.push(CvState {
            waiters: Vec::new(),
        });
        id
    };
    with_op(reg, reg)
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Which happens-before edges an operation carries.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Hb {
    pub(crate) acquire: bool,
    pub(crate) release: bool,
    /// SeqCst is modeled conservatively: AcqRel plus loads pinned to the
    /// latest store.
    pub(crate) seq_cst: bool,
}

fn visible_floor(st: &State, id: usize, me: usize) -> usize {
    let a = &st.atomics[id];
    let mut floor = a.last_seen[me];
    for (j, s) in a.stores.iter().enumerate().skip(floor + 1) {
        if st.vclocks[me][s.writer] >= s.when_writer {
            floor = j;
        }
    }
    floor
}

fn finish_read(st: &mut State, id: usize, me: usize, idx: usize, sy: Hb) -> u64 {
    let release = st.atomics[id].stores[idx].release;
    if sy.acquire {
        if let Some(rc) = release {
            join_clock(&mut st.vclocks[me], &rc);
        }
    }
    let a = &mut st.atomics[id];
    a.last_seen[me] = a.last_seen[me].max(idx);
    a.stores[idx].value
}

pub(crate) fn atomic_load(id: usize, sy: Hb) -> u64 {
    with_op(
        |st, me| {
            let n = st.atomics[id].stores.len();
            let floor = visible_floor(st, id, me);
            let idx = if sy.seq_cst {
                n - 1
            } else if n - 1 > floor {
                floor + choose(st, "read-from", n - floor)
            } else {
                floor
            };
            finish_read(st, id, me, idx, sy)
        },
        |st, _me| st.atomics[id].stores.last().map_or(0, |s| s.value),
    )
}

fn push_store(st: &mut State, id: usize, me: usize, value: u64, release: Option<VClock>) {
    let when = st.vclocks[me][me];
    let a = &mut st.atomics[id];
    a.stores.push(StoreRec {
        value,
        writer: me,
        when_writer: when,
        release,
    });
    a.last_seen[me] = a.stores.len() - 1;
}

pub(crate) fn atomic_store(id: usize, value: u64, sy: Hb) {
    with_op(
        |st, me| {
            let release = sy.release.then_some(st.vclocks[me]);
            push_store(st, id, me, value, release);
        },
        |st, me| push_store(st, id, me, value, None),
    )
}

/// Read-modify-write: reads the *latest* store (RMWs are coherent), applies
/// `f`, and appends the result. A releasing RMW continues the release
/// sequence of the store it replaced (C11 release-sequence rule), so an
/// acquire load of the RMW's store still synchronizes with the original
/// release head.
pub(crate) fn atomic_rmw(id: usize, sy: Hb, f: impl FnOnce(u64) -> Option<u64>) -> u64 {
    with_op(
        |st, me| {
            let idx = st.atomics[id].stores.len() - 1;
            let prev_release = st.atomics[id].stores[idx].release;
            let old = finish_read(st, id, me, idx, sy);
            if let Some(new) = f(old) {
                let release = if sy.release {
                    let mut rc = prev_release.unwrap_or([0; MAX_THREADS]);
                    join_clock(&mut rc, &st.vclocks[me]);
                    Some(rc)
                } else {
                    prev_release
                };
                push_store(st, id, me, new, release);
            }
            old
        },
        |st, _me| st.atomics[id].stores.last().map_or(0, |s| s.value),
    )
}

/// Compare-exchange: reads the latest store (RMWs are coherent). On match,
/// stores `new` with the success ordering's edges (continuing the release
/// sequence); on mismatch, the read uses the failure ordering — crucially,
/// a `Relaxed` failure must not gain a spurious acquire edge.
pub(crate) fn atomic_cas(
    id: usize,
    current: u64,
    new: u64,
    succ: Hb,
    fail: Hb,
) -> Result<u64, u64> {
    with_op(
        |st, me| {
            let idx = st.atomics[id].stores.len() - 1;
            let old = st.atomics[id].stores[idx].value;
            if old == current {
                let prev_release = st.atomics[id].stores[idx].release;
                finish_read(st, id, me, idx, succ);
                let release = if succ.release {
                    let mut rc = prev_release.unwrap_or([0; MAX_THREADS]);
                    join_clock(&mut rc, &st.vclocks[me]);
                    Some(rc)
                } else {
                    prev_release
                };
                push_store(st, id, me, new, release);
                Ok(old)
            } else {
                finish_read(st, id, me, idx, fail);
                Err(old)
            }
        },
        |st, _me| {
            let s = st.atomics[id].stores.last_mut().expect("registered atomic");
            if s.value == current {
                let old = s.value;
                s.value = new;
                Ok(old)
            } else {
                Err(s.value)
            }
        },
    )
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

fn release_mutex(st: &mut State, me: usize, id: usize) {
    st.mutexes[id].holder = None;
    st.mutexes[id].clock = st.vclocks[me];
    for t in 0..st.threads.len() {
        if st.threads[t].status == Status::BlockedMutex(id) {
            st.threads[t].status = Status::Runnable;
        }
    }
}

/// Model-acquire mutex `id`: one visible op that may block (forced handoff,
/// not a preemption) until the holder releases.
pub(crate) fn mutex_lock(id: usize) {
    let (exec, me) = current();
    if degraded() {
        // Unwind-time acquire (channel endpoint Drop): mutual exclusion no
        // longer matters — the episode is over — so just take it.
        let mut st = lock_state(&exec);
        st.mutexes[id].holder = Some(me);
        return;
    }
    let st = lock_state(&exec);
    let mut st = match exec.wait_turn(st, me) {
        Ok(st) => st,
        Err(st) => {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
    };
    st.step += 1;
    st.vclocks[me][me] += 1;
    loop {
        if st.mutexes[id].holder.is_none() {
            st.mutexes[id].holder = Some(me);
            let clock = st.mutexes[id].clock;
            join_clock(&mut st.vclocks[me], &clock);
            break;
        }
        st.threads[me].status = Status::BlockedMutex(id);
        exec.handoff(&mut st, me);
        st = match exec.wait_runnable_turn(st, me) {
            Ok(st) => st,
            Err(st) => {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
        };
    }
    exec.handoff(&mut st, me);
    let abort = st.aborting;
    drop(st);
    if abort {
        std::panic::panic_any(AbortToken);
    }
}

pub(crate) fn mutex_unlock(id: usize) {
    with_op(
        |st, me| release_mutex(st, me, id),
        |st, me| {
            if st.mutexes[id].holder == Some(me) {
                release_mutex(st, me, id);
            }
        },
    )
}

/// Condvar wait: atomically (in the model) releases `mutex_id`, blocks until
/// notified or (for timed waits) until the timeout fires, then re-acquires
/// the mutex. Returns whether the wait timed out.
///
/// Timed waits branch explicitly: either block like an untimed wait (the
/// timeout then only fires via the all-blocked fallback in
/// [`Execution::no_runnable`]), or fire the timeout *now* — logical time
/// jumps to the deadline, but the mutex is still released and re-acquired
/// around a handoff so schedules where other threads act "during" the wait
/// are explored.
pub(crate) fn cond_wait(cv_id: usize, mutex_id: usize, timeout_us: Option<u64>) -> bool {
    let (exec, me) = current();
    assert!(!degraded(), "condvar wait during unwind");
    let st = lock_state(&exec);
    let mut st = match exec.wait_turn(st, me) {
        Ok(st) => st,
        Err(st) => {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
    };
    st.step += 1;
    st.vclocks[me][me] += 1;
    let deadline = timeout_us.map(|us| st.step + us.max(1));
    let fire_now = match deadline {
        Some(_) => choose(&mut st, "cv-timeout", 2) == 1,
        None => false,
    };
    release_mutex(&mut st, me, mutex_id);
    let timed_out;
    if fire_now {
        st.step = st.step.max(deadline.unwrap_or(0));
        timed_out = true;
        exec.handoff(&mut st, me);
    } else {
        st.threads[me].timed_out = false;
        st.threads[me].status = Status::BlockedCond(cv_id);
        st.condvars[cv_id].waiters.push((me, deadline));
        exec.handoff(&mut st, me);
        st = match exec.wait_runnable_turn(st, me) {
            Ok(st) => st,
            Err(st) => {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
        };
        timed_out = st.threads[me].timed_out;
        exec.handoff(&mut st, me);
    }
    let abort = st.aborting;
    drop(st);
    if abort {
        std::panic::panic_any(AbortToken);
    }
    mutex_lock(mutex_id);
    timed_out
}

/// Notify one waiter; *which* waiter is a choice point.
pub(crate) fn cond_notify_one(cv_id: usize) {
    with_op(
        |st, _me| {
            let n = st.condvars[cv_id].waiters.len();
            if n == 0 {
                return;
            }
            let k = if n > 1 {
                choose(st, "notify-pick", n)
            } else {
                0
            };
            let (tid, _) = st.condvars[cv_id].waiters.remove(k);
            st.threads[tid].timed_out = false;
            st.threads[tid].status = Status::Runnable;
        },
        |st, _me| {
            for (tid, _) in std::mem::take(&mut st.condvars[cv_id].waiters) {
                st.threads[tid].status = Status::Runnable;
            }
        },
    )
}

pub(crate) fn cond_notify_all(cv_id: usize) {
    let wake_all = |st: &mut State, _me: usize| {
        for (tid, _) in std::mem::take(&mut st.condvars[cv_id].waiters) {
            st.threads[tid].timed_out = false;
            st.threads[tid].status = Status::Runnable;
        }
    };
    with_op(wake_all, wake_all)
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Read the model clock (one visible op: the value must be a deterministic
/// function of the schedule, so it cannot be read without holding the baton).
pub(crate) fn now_micros() -> u64 {
    with_op(|st, _me| st.step, |st, _me| st.step)
}

/// Extra schedule point with no effect.
pub(crate) fn yield_point() {
    with_op(|_st, _me| (), |_st, _me| ());
}

/// Register and start a model thread running `body`; returns its tid.
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send + 'static>) -> usize {
    let (exec, _me) = current();
    assert!(!degraded(), "thread spawn during unwind");
    let exec2 = Arc::clone(&exec);
    with_op(
        move |st, me| {
            let tid = st.threads.len();
            assert!(
                tid < MAX_THREADS,
                "viderec-check models at most {MAX_THREADS} threads"
            );
            st.threads.push(ThreadSlot {
                status: Status::Runnable,
                timed_out: false,
            });
            let mut clock = st.vclocks[me];
            clock[tid] += 1;
            st.vclocks.push(clock);
            let handle = std::thread::spawn(move || run_thread(exec2, tid, body));
            st.os_handles.push(handle);
            tid
        },
        |_st, _me| unreachable!("spawn during unwind"),
    )
}

/// Block until thread `tid` finishes, joining its final clock.
pub(crate) fn join_thread(tid: usize) {
    let (exec, me) = current();
    assert!(!degraded(), "thread join during unwind");
    let st = lock_state(&exec);
    let mut st = match exec.wait_turn(st, me) {
        Ok(st) => st,
        Err(st) => {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
    };
    st.step += 1;
    st.vclocks[me][me] += 1;
    while st.threads[tid].status != Status::Finished {
        st.threads[me].status = Status::BlockedJoin(tid);
        exec.handoff(&mut st, me);
        st = match exec.wait_runnable_turn(st, me) {
            Ok(st) => st,
            Err(st) => {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
        };
    }
    let clock = st.vclocks[tid];
    join_clock(&mut st.vclocks[me], &clock);
    exec.handoff(&mut st, me);
    let abort = st.aborting;
    drop(st);
    if abort {
        std::panic::panic_any(AbortToken);
    }
}

fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Body of every model OS thread: run the closure, then perform the finish
/// bookkeeping as a baton-gated step so `finished` counts change
/// deterministically within the schedule.
fn run_thread(exec: Arc<Execution>, tid: usize, body: Box<dyn FnOnce() + Send + 'static>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let result = catch_unwind(AssertUnwindSafe(body));
    let mut st = lock_state(&exec);
    match result {
        Ok(()) => {
            // Wait for the baton before finishing, unless aborting.
            loop {
                if st.aborting || st.active == tid {
                    break;
                }
                st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        Err(payload) => {
            if !payload.is::<AbortToken>() {
                let msg = payload_message(payload.as_ref());
                exec.fail(&mut st, format!("thread {tid} panicked: {msg}"));
            }
            st.aborting = true;
        }
    }
    st.threads[tid].status = Status::Finished;
    st.finished += 1;
    for t in 0..st.threads.len() {
        if st.threads[t].status == Status::BlockedJoin(tid) {
            st.threads[t].status = Status::Runnable;
        }
    }
    if st.aborting {
        exec.cv.notify_all();
    } else {
        exec.handoff(&mut st, tid);
        exec.cv.notify_all();
    }
    drop(st);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Exploration statistics returned by a completed (violation-free) check.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: u64,
    /// True when the bounded state space was exhausted (DFS mode).
    pub complete: bool,
    /// Longest choice trace observed.
    pub max_depth: usize,
}

/// Configures and runs explorations. See the module docs for the semantics.
pub struct Model {
    max_preemptions: u32,
    max_schedules: u64,
}

impl Default for Model {
    fn default() -> Self {
        Model {
            max_preemptions: 2,
            max_schedules: 200_000,
        }
    }
}

fn suppress_model_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Model threads unwind constantly (AbortToken) and their real
            // assertion failures are re-reported by the controller with the
            // failing schedule attached; keep stderr quiet for both.
            let in_model = CURRENT.with(|c| c.borrow().is_some());
            if in_model || info.payload().is::<AbortToken>() {
                return;
            }
            default(info);
        }));
    });
}

impl Model {
    /// A model with the default bounds (2 preemptions, 200k schedules).
    pub fn new() -> Self {
        Model::default()
    }

    /// Set the preemption bound (forced switches at blocking ops are free).
    pub fn preemptions(mut self, n: u32) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Set the schedule budget; exceeding it panics rather than spinning.
    pub fn max_schedules(mut self, n: u64) -> Self {
        self.max_schedules = n;
        self
    }

    fn run_episode(
        &self,
        f: &Arc<dyn Fn() + Send + Sync>,
        prefix: Vec<u16>,
        mode: Mode,
        rng: u64,
    ) -> (Vec<Choice>, Option<Failure>) {
        suppress_model_panics();
        let exec = Arc::new(Execution::new(prefix, mode, self.max_preemptions, rng));
        {
            let mut st = lock_state(&exec);
            st.threads.push(ThreadSlot {
                status: Status::Runnable,
                timed_out: false,
            });
            let mut clock = [0; MAX_THREADS];
            clock[0] = 1;
            st.vclocks.push(clock);
        }
        let exec2 = Arc::clone(&exec);
        let body = Arc::clone(f);
        let root = std::thread::spawn(move || run_thread(exec2, 0, Box::new(move || body())));
        let mut st = lock_state(&exec);
        while st.finished < st.threads.len() {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let handles = std::mem::take(&mut st.os_handles);
        let failure = st.failure.take();
        let trace = match &failure {
            Some(fl) => fl.trace.clone(),
            None => std::mem::take(&mut st.trace),
        };
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        let _ = root.join();
        (trace, failure)
    }

    fn report_violation(&self, failure: &Failure, schedules: u64, how: &str) -> ! {
        let csv: Vec<String> = failure.trace.iter().map(|c| c.chosen.to_string()).collect();
        let csv = csv.join(",");
        let labels: Vec<String> = failure
            .trace
            .iter()
            .rev()
            .take(6)
            .map(|c| format!("{}={}", c.label, c.chosen))
            .collect();
        panic!(
            "\nviderec-check: property violated after {schedules} schedule(s) ({how})\n  \
             {}\n  failing schedule ({} choice points, last: {}): {csv}\n  \
             replay with VIDEREC_CHECK_REPLAY='{csv}' (run the single failing test) \
             or Model::replay(\"{csv}\", ..)\n",
            failure.message,
            failure.trace.len(),
            labels.join(" "),
        );
    }

    /// Exhaustive bounded DFS over schedules. Panics with the failing
    /// schedule on the first violation; returns exploration stats otherwise.
    ///
    /// If `VIDEREC_CHECK_REPLAY` is set in the environment, runs that single
    /// schedule instead (run one test at a time when using it).
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) -> Report {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        if let Ok(replay) = std::env::var("VIDEREC_CHECK_REPLAY") {
            return self.replay_inner(&replay, &f);
        }
        let mut prefix: Vec<u16> = Vec::new();
        let mut schedules = 0u64;
        let mut max_depth = 0usize;
        loop {
            schedules += 1;
            assert!(
                schedules <= self.max_schedules,
                "viderec-check: schedule budget {} exhausted (state space too \
                 large; shrink the test or raise Model::max_schedules)",
                self.max_schedules
            );
            let (trace, failure) = self.run_episode(&f, std::mem::take(&mut prefix), Mode::Dfs, 0);
            if let Some(fl) = failure {
                self.report_violation(
                    &fl,
                    schedules,
                    &format!("exhaustive DFS, preemption bound {}", self.max_preemptions),
                );
            }
            max_depth = max_depth.max(trace.len());
            let mut next = None;
            for i in (0..trace.len()).rev() {
                if trace[i].chosen + 1 < trace[i].alts {
                    let mut p: Vec<u16> = trace[..i].iter().map(|c| c.chosen).collect();
                    p.push(trace[i].chosen + 1);
                    next = Some(p);
                    break;
                }
            }
            match next {
                Some(p) => prefix = p,
                None => {
                    return Report {
                        schedules,
                        complete: true,
                        max_depth,
                    }
                }
            }
        }
    }

    /// Seeded pseudo-random schedule walks for state spaces too large to
    /// exhaust. Failures report the exact failing choice trace, which
    /// replays deterministically regardless of the seed.
    pub fn check_random(
        &self,
        seed: u64,
        walks: u64,
        f: impl Fn() + Send + Sync + 'static,
    ) -> Report {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        if let Ok(replay) = std::env::var("VIDEREC_CHECK_REPLAY") {
            return self.replay_inner(&replay, &f);
        }
        let mut max_depth = 0usize;
        for walk in 0..walks {
            // SplitMix64 over (seed, walk) so each walk is independent.
            let mut z = seed ^ walk.wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            let (trace, failure) = self.run_episode(&f, Vec::new(), Mode::Random, z ^ (z >> 31));
            if let Some(fl) = failure {
                self.report_violation(&fl, walk + 1, &format!("random walk, seed {seed}"));
            }
            max_depth = max_depth.max(trace.len());
        }
        Report {
            schedules: walks,
            complete: false,
            max_depth,
        }
    }

    /// Replay one exact schedule from its printed choice string.
    pub fn replay(&self, schedule: &str, f: impl Fn() + Send + Sync + 'static) -> Report {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        self.replay_inner(schedule, &f)
    }

    fn replay_inner(&self, schedule: &str, f: &Arc<dyn Fn() + Send + Sync>) -> Report {
        let prefix: Vec<u16> = schedule
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse::<u16>()
                    .unwrap_or_else(|_| panic!("bad schedule element {s:?}"))
            })
            .collect();
        let (trace, failure) = self.run_episode(f, prefix, Mode::Dfs, 0);
        if let Some(fl) = failure {
            self.report_violation(&fl, 1, "replay");
        }
        Report {
            schedules: 1,
            complete: false,
            max_depth: trace.len(),
        }
    }
}
