//! The shipped durability protocol — `crates/wal/src/protocol.rs` compiled
//! **verbatim, from the same file on disk** — against the instrumented shim.

/// The `sync` facade the included source resolves `super::sync` to.
pub mod sync {
    pub use crate::shim::{AtomicU64, Ordering};
}

#[path = "../../wal/src/protocol.rs"]
pub mod protocol;
