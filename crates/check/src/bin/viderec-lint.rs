//! `viderec-lint`: the repo-invariant linter.
//!
//! Walks `crates/*/src`, `crates/*/tests`, `vendor/*/src`, and `src/` under
//! the workspace root, runs every rule in [`viderec_check::lint`], prints
//! findings as `path:line: [rule] message`, and exits non-zero if any
//! survive.
//!
//! `--print-atomics-rows` instead emits one `ATOMICS.md` table row skeleton
//! per `Ordering::` site found, for authoring or refreshing the audit
//! table; `--print-safety-rows` does the same for `SAFETY.md` and the
//! workspace's `unsafe` sites.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use viderec_check::lint;

fn workspace_root() -> PathBuf {
    // crates/check/ → two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the workspace root")
        .to_path_buf()
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

fn source_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    for group in ["crates", "vendor"] {
        if let Ok(entries) = std::fs::read_dir(root.join(group)) {
            for entry in entries.flatten() {
                collect(root, &entry.path().join("src"), &mut files);
                if group == "crates" {
                    collect(root, &entry.path().join("tests"), &mut files);
                }
            }
        }
    }
    collect(root, &root.join("src"), &mut files);
    files.sort();
    files
}

fn main() -> ExitCode {
    let root = workspace_root();
    let loaded: Vec<(String, String)> = source_files(&root)
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(root.join(&p)).unwrap_or_default();
            (p, text)
        })
        .collect();

    if std::env::args().any(|a| a == "--print-atomics-rows") {
        for (path, line, ordering) in lint::atomics_sites(&loaded) {
            println!("| `{path}:{line}` | `{ordering}` | TODO |");
        }
        return ExitCode::SUCCESS;
    }
    if std::env::args().any(|a| a == "--print-safety-rows") {
        for (path, line, kind, _) in lint::unsafe_sites(&loaded) {
            println!("| `{path}:{line}` | `{kind}` | TODO |");
        }
        return ExitCode::SUCCESS;
    }

    let atomics_md = std::fs::read_to_string(root.join("ATOMICS.md")).ok();
    if atomics_md.is_none() {
        eprintln!("viderec-lint: warning: no ATOMICS.md at the workspace root");
    }
    let safety_md = std::fs::read_to_string(root.join("SAFETY.md")).ok();
    if safety_md.is_none() {
        eprintln!("viderec-lint: warning: no SAFETY.md at the workspace root");
    }
    let findings = lint::lint_workspace(&loaded, atomics_md.as_deref(), safety_md.as_deref());
    for f in &findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    if findings.is_empty() {
        println!("viderec-lint: {} files clean", loaded.len());
        ExitCode::SUCCESS
    } else {
        println!("viderec-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
