//! The repo-invariant rule engine behind the `viderec-lint` binary.
//!
//! Pure: it takes `(path, contents)` pairs plus the text of `ATOMICS.md` and
//! returns findings — no filesystem, no process exit — so every rule is unit
//! testable against synthetic workspaces. All matching runs on the token
//! stream from [`crate::lex`], never on raw text: `Ordering::Acquire` inside
//! a string or a comment is one `Str`/comment token and cannot trip a rule.
//!
//! # Rules
//!
//! * **`atomics-audit`** — every `Ordering::{Relaxed,Acquire,Release,AcqRel,
//!   SeqCst}` site in shipped code must have a row in `ATOMICS.md` matching
//!   its exact `path:line` and ordering, with a non-empty justification.
//!   Stale rows (no matching site anymore) fail too, so the table cannot rot.
//! * **`serve-no-panic`** — no `.unwrap(` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` on the serve request path
//!   (`crates/serve/src`), excluding `#[cfg(test)]` regions.
//! * **`wallclock`** — no `Instant::now` in deterministic crates; timing
//!   belongs to the tracer (and `eval`'s experiment harness, under waiver).
//! * **`reader-locks`** — no `Mutex`/`RwLock` identifiers in reader-side
//!   crates; readers stay lock-free (atomics and epoch snapshots).
//! * **`vendor-drift`** — `vendored_crate::segment` references from workspace
//!   code must name something actually declared in the vendored stub's
//!   sources, catching silent API drift between stub and real crate.
//! * **`corpus-enumeration`** — the recommend paths
//!   (`crates/core/src/recommender.rs`, `crates/core/src/parallel.rs`) must
//!   not enumerate the corpus: `all_video_indices` may appear only at its
//!   definition or under a waiver, and `<x>.videos.len()` is flagged as an
//!   enumeration seed. The sanctioned sites — the naive reference scan, the
//!   bound-only certificate sweep, the zero-fill tail, corpus-size metadata —
//!   carry waivers stating why they are allowed.
//! * **`emd-direct-call`** — the hot paths (`crates/core/src`,
//!   `crates/serve/src`) must not call the sorting `emd_1d(` entry point:
//!   scoring goes through the arena's presorted SoA lanes
//!   (`emd_1d_soa[_capped]` via `kappa_exact_cached`), which skip the
//!   per-call sort and allocation. `#[cfg(test)]` regions are exempt —
//!   tests may use `emd_1d` as a reference oracle.
//! * **`durable-writes`** — mutating `std::fs` calls (`fs::write`,
//!   `fs::rename`, `File::create`, `OpenOptions::new`, …) are banned in
//!   shipped code outside `crates/wal/src`: durable state goes through the
//!   WAL/snapshot subsystem so crash-safety reasoning stays in one crate.
//!   `#[cfg(test)]` regions are exempt; benchmark report writers and other
//!   non-durability outputs carry waivers saying so.
//! * **`signal-safe`** — `crates/prof/src/signal.rs` (everything in it may
//!   run inside the SIGPROF handler) must stay async-signal-safe: no
//!   allocating/formatting/panicking macros (`format!`, `vec!`, `panic!`,
//!   `assert!`, …), no allocating or blocking method calls (`.unwrap()`,
//!   `.to_string()`, `.clone()`, `.lock()`, …), and no heap or lock types
//!   (`Vec`, `String`, `Box`, `Arc`, `Mutex`, …). `#[cfg(test)]` regions
//!   are exempt; a site that provably cannot run in the handler carries a
//!   waiver saying why. **Transitive:** the same tokens are additionally
//!   banned in every function the call graph (see [`crate::callgraph`])
//!   reaches from the SIGPROF `handler`, whatever file it lives in; the
//!   finding carries the call chain. A waiver on the violating line — or on
//!   the function's `fn` line, waiving the whole body — suppresses it.
//! * **`serve-no-panic` (transitive)** — beyond the `crates/serve/src` file
//!   scan above, every function reachable from `handle_connection` (the
//!   request-path entry point) is checked for the same panic tokens, with
//!   the call chain in the finding and the same waiver-at-any-node rule.
//! * **`unsafe-audit`** — every `unsafe` block/fn/impl in shipped crates
//!   *and their integration tests* needs (a) a `// SAFETY:` comment run
//!   directly above it (for `unsafe fn`/`unsafe impl` items a doc comment
//!   with a `# Safety` section also qualifies), and (b) a justified
//!   `path:line` row in the checked-in `SAFETY.md` table. Stale rows fail
//!   too. Like `atomics-audit` it cannot be waived — the table *is* the
//!   escape hatch, and `viderec-lint --print-safety-rows` regenerates its
//!   skeleton.
//!
//! # Waivers
//!
//! `// viderec-lint: allow(<rule>) — <reason>` waives `<rule>` on the
//! comment's own lines, any directly following comment lines, and the first
//! line after the comment run (so a multi-line explanation still covers the
//! code right below it; a blank line ends the run). The marker must open the
//! comment (mentioning the syntax mid-sentence, as this paragraph does, is
//! inert). The reason is mandatory; a waiver without one is itself a finding.
//! `atomics-audit` cannot be waived — its escape hatch is the audit table.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::lex::{lex, significant, Token, TokenKind};
use crate::parse::{parse_file, ParsedFile};

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line the finding anchors to.
    pub line: u32,
    /// Rule identifier (also the name accepted by `allow(...)` waivers).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Read-hot crates whose lookups run inside the serve loop: no blocking
/// primitives allowed anywhere in their `src/` trees.
const READER_CRATES: [&str; 6] = ["core", "emd", "index", "signature", "social", "video"];

/// Crates that must stay wall-clock free so replays and model runs are
/// deterministic (trace/serve/bench own the clock; check shims it away).
const WALLCLOCK_CRATES: [&str; 7] = [
    "core",
    "emd",
    "eval",
    "index",
    "signature",
    "social",
    "video",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Rules a `// viderec-lint: allow(...)` comment may waive.
const WAIVABLE: [&str; 8] = [
    "serve-no-panic",
    "wallclock",
    "reader-locks",
    "vendor-drift",
    "corpus-enumeration",
    "emd-direct-call",
    "durable-writes",
    "signal-safe",
];

/// The one module whose every function may execute inside the SIGPROF
/// handler, and therefore must be async-signal-safe throughout.
const SIGNAL_SAFE_SCOPE: &str = "crates/prof/src/signal.rs";

/// The SIGPROF handler entry point: the root of the transitive
/// `signal-safe` walk.
const SIGNAL_ROOT: (&str, &str) = (SIGNAL_SAFE_SCOPE, "handler");

/// The request-path entry point: the root of the transitive
/// `serve-no-panic` walk.
const SERVE_ROOT: (&str, &str) = ("crates/serve/src/server.rs", "handle_connection");

/// How many call-chain hops a transitive finding prints before eliding the
/// middle (chains through deep index code can be a dozen frames).
const CHAIN_DISPLAY: usize = 5;

/// Macros whose expansion allocates, formats, or reaches the panic
/// machinery — all fatal inside a signal handler.
const SIGNAL_UNSAFE_MACROS: [&str; 19] = [
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "vec",
    "dbg",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Method calls that allocate, panic, or block — none reentrant.
const SIGNAL_UNSAFE_METHODS: [&str; 8] = [
    "unwrap",
    "expect",
    "to_string",
    "to_owned",
    "to_vec",
    "clone",
    "lock",
    "wait",
];

/// Types whose very mention means heap allocation or blocking primitives.
const SIGNAL_UNSAFE_TYPES: [&str; 9] = [
    "Vec", "String", "Box", "Rc", "Arc", "Mutex", "RwLock", "Condvar", "Once",
];

/// Mutating `std::fs` free functions flagged by `durable-writes` (reads like
/// `fs::read` stay legal everywhere).
const FS_WRITE_OPS: [&str; 10] = [
    "write",
    "rename",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "copy",
    "hard_link",
    "set_permissions",
];

/// Recommend-path files where full-corpus enumeration is banned outside the
/// waived, sanctioned sites.
const ENUMERATION_SCOPE: [&str; 2] = [
    "crates/core/src/recommender.rs",
    "crates/core/src/parallel.rs",
];

/// Hot-path trees where the sorting `emd_1d(` entry point is banned in
/// shipped code (the arena's presorted SoA lanes are the sanctioned route).
const EMD_HOT_SCOPE: [&str; 2] = ["crates/core/src/", "crates/serve/src/"];

/// `crates/<name>/src/...` → `<name>`.
fn crate_src(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// `vendor/<name>/src/...` → `<name>`.
fn vendor_src(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("vendor/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// `crates/<name>/tests/...` → `<name>`.
fn crate_tests(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("tests/").then_some(name)
}

fn is_punct(toks: &[&Token], i: usize, ch: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ch)
}

fn ident_at<'a>(toks: &[&'a Token], i: usize) -> Option<&'a str> {
    toks.get(i)
        .and_then(|t| (t.kind == TokenKind::Ident).then_some(t.text.as_str()))
}

struct Waiver {
    rule: String,
    /// First covered line (the marker comment's own line).
    start: u32,
    /// Last covered line: the end of the directly following comment run,
    /// plus one line of code.
    end: u32,
}

fn waived(waivers: &[Waiver], rule: &str, line: u32) -> bool {
    waivers
        .iter()
        .any(|w| w.rule == rule && w.start <= line && line <= w.end)
}

fn parse_waivers(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut out = Vec::new();
    // Every line occupied by a comment token, so a waiver's reach can extend
    // through the whole (possibly multi-line) comment run it opens.
    let mut comment_lines: HashSet<u32> = HashSet::new();
    for t in tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    {
        let span = t.text.matches('\n').count() as u32;
        for l in t.line..=t.line + span {
            comment_lines.insert(l);
        }
    }
    for t in tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    {
        // The marker must open the comment (only comment sigils and
        // whitespace before it); prose that merely mentions the syntax in
        // backticks, like this module's docs, is not a waiver.
        let stripped = t.text.trim_start_matches(['/', '*', '!', ' ', '\t']);
        let Some(rest) = stripped.strip_prefix("viderec-lint:") else {
            continue;
        };
        let mut bad = |message: String| {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: "waiver",
                message,
            });
        };
        let Some(a) = rest.find("allow(") else {
            bad("malformed waiver: expected `viderec-lint: allow(<rule>) — <reason>`".into());
            continue;
        };
        let after = &rest[a + "allow(".len()..];
        let Some(close) = after.find(')') else {
            bad("malformed waiver: unclosed `allow(`".into());
            continue;
        };
        let rule = after[..close].trim().to_string();
        if !WAIVABLE.contains(&rule.as_str()) {
            bad(format!(
                "waiver names unknown or unwaivable rule `{rule}` (waivable: {})",
                WAIVABLE.join(", ")
            ));
            continue;
        }
        let reason = after[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-'))
            .trim_end_matches("*/")
            .trim();
        if reason.is_empty() {
            bad(format!(
                "waiver for `{rule}` has no reason; write `— <why>`"
            ));
            continue;
        }
        let mut end = t.line;
        while comment_lines.contains(&(end + 1)) {
            end += 1;
        }
        out.push(Waiver {
            rule,
            start: t.line,
            end: end + 1,
        });
    }
    out
}

/// All `Ordering::<variant>` sites in `toks` as `(line, variant)`.
fn ordering_sites(toks: &[&Token]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ident_at(toks, i) == Some("Ordering")
            && is_punct(toks, i + 1, ":")
            && is_punct(toks, i + 2, ":")
            && ident_at(toks, i + 3).is_some_and(|v| ATOMIC_ORDERINGS.contains(&v))
        {
            out.push((toks[i].line, toks[i + 3].text.clone()));
        }
    }
    out
}

/// True when `path` is in scope for the atomics audit.
fn atomics_scope(path: &str) -> bool {
    (crate_src(path).is_some_and(|c| c != "check"))
        || vendor_src(path).is_some()
        || path.starts_with("src/")
}

/// Every in-scope `Ordering::<variant>` site across `files`, deduplicated,
/// as `(path, line, variant)` — the raw material for `ATOMICS.md` rows.
pub fn atomics_sites(files: &[(String, String)]) -> Vec<(String, u32, String)> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (path, src) in files {
        if !atomics_scope(path) {
            continue;
        }
        let tokens = lex(src);
        for (line, variant) in ordering_sites(&significant(&tokens)) {
            if seen.insert((path.clone(), line, variant.clone())) {
                out.push((path.clone(), line, variant));
            }
        }
    }
    out
}

struct AuditRow {
    path: String,
    line: u32,
    ordering: String,
    justified: bool,
    row_line: u32,
    used: bool,
}

fn parse_audit(md: &str, findings: &mut Vec<Finding>) -> Vec<AuditRow> {
    let mut rows = Vec::new();
    for (idx, raw) in md.lines().enumerate() {
        let row_line = (idx + 1) as u32;
        let t = raw.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`'))
            .collect();
        if cells.len() < 3
            || cells[0] == "site"
            || cells[0].chars().all(|c| matches!(c, '-' | ':' | ' '))
        {
            continue;
        }
        let parsed = cells[0]
            .rsplit_once(':')
            .and_then(|(p, l)| l.parse::<u32>().ok().map(|l| (p.to_string(), l)));
        let Some((path, line)) = parsed else {
            findings.push(Finding {
                path: "ATOMICS.md".into(),
                line: row_line,
                rule: "atomics-audit",
                message: format!("malformed site cell `{}` (expected `path:line`)", cells[0]),
            });
            continue;
        };
        rows.push(AuditRow {
            path,
            line,
            ordering: cells[1].to_string(),
            justified: !cells[2].is_empty() && cells[2] != "TODO",
            row_line,
            used: false,
        });
    }
    rows
}

/// A panic token at `toks[i]`: `.unwrap(`/`.expect(` or a panic macro.
fn panic_token(toks: &[&Token], i: usize) -> Option<String> {
    if is_punct(toks, i, ".")
        && ident_at(toks, i + 1).is_some_and(|m| PANIC_METHODS.contains(&m))
        && is_punct(toks, i + 2, "(")
    {
        Some(format!(".{}()", toks[i + 1].text))
    } else if ident_at(toks, i).is_some_and(|m| PANIC_MACROS.contains(&m))
        && is_punct(toks, i + 1, "!")
    {
        Some(format!("{}!", toks[i].text))
    } else {
        None
    }
}

/// A signal-unsafe token at `toks[i]`: allocating/formatting/panicking
/// macro, allocating/blocking method call, or heap/lock type mention.
fn signal_unsafe_token(toks: &[&Token], i: usize) -> Option<String> {
    if ident_at(toks, i).is_some_and(|m| SIGNAL_UNSAFE_MACROS.contains(&m))
        && is_punct(toks, i + 1, "!")
    {
        Some(format!("{}!", toks[i].text))
    } else if is_punct(toks, i, ".")
        && ident_at(toks, i + 1).is_some_and(|m| SIGNAL_UNSAFE_METHODS.contains(&m))
        && is_punct(toks, i + 2, "(")
    {
        Some(format!(".{}()", toks[i + 1].text))
    } else if ident_at(toks, i).is_some_and(|t| SIGNAL_UNSAFE_TYPES.contains(&t)) {
        Some(toks[i].text.clone())
    } else {
        None
    }
}

/// True when `path` is in scope for the unsafe audit: shipped sources plus
/// crate integration tests (test `unsafe` needs the same justification
/// discipline — a miscontracted test allocator corrupts the whole test).
fn unsafe_audit_scope(path: &str) -> bool {
    (crate_src(path).is_some_and(|c| c != "check"))
        || (crate_tests(path).is_some_and(|c| c != "check"))
        || vendor_src(path).is_some()
        || path.starts_with("src/")
}

/// Every in-scope `unsafe` site across `files` as `(path, line, kind
/// label, has_safety_comment)` — the raw material for `SAFETY.md` rows.
pub fn unsafe_sites(files: &[(String, String)]) -> Vec<(String, u32, &'static str, bool)> {
    let mut out = Vec::new();
    for (path, src) in files {
        if !unsafe_audit_scope(path) {
            continue;
        }
        for site in parse_file(src).unsafe_sites {
            out.push((
                path.clone(),
                site.line,
                site.kind.label(),
                site.has_safety_comment,
            ));
        }
    }
    out
}

struct SafetyRow {
    path: String,
    line: u32,
    kind: String,
    justified: bool,
    row_line: u32,
    used: bool,
}

fn parse_safety(md: &str, findings: &mut Vec<Finding>) -> Vec<SafetyRow> {
    let mut rows = Vec::new();
    for (idx, raw) in md.lines().enumerate() {
        let row_line = (idx + 1) as u32;
        let t = raw.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`'))
            .collect();
        if cells.len() < 3
            || cells[0] == "site"
            || cells[0].chars().all(|c| matches!(c, '-' | ':' | ' '))
        {
            continue;
        }
        let parsed = cells[0]
            .rsplit_once(':')
            .and_then(|(p, l)| l.parse::<u32>().ok().map(|l| (p.to_string(), l)));
        let Some((path, line)) = parsed else {
            findings.push(Finding {
                path: "SAFETY.md".into(),
                line: row_line,
                rule: "unsafe-audit",
                message: format!("malformed site cell `{}` (expected `path:line`)", cells[0]),
            });
            continue;
        };
        rows.push(SafetyRow {
            path,
            line,
            kind: cells[1].to_string(),
            justified: !cells[2].is_empty() && cells[2] != "TODO",
            row_line,
            used: false,
        });
    }
    rows
}

/// `root → … → offender`, middle-elided past [`CHAIN_DISPLAY`] frames.
fn format_chain(chain: &[String]) -> String {
    if chain.len() <= CHAIN_DISPLAY {
        chain.join(" → ")
    } else {
        format!(
            "{} → … ({} frames) … → {}",
            chain[..2].join(" → "),
            chain.len() - 4,
            chain[chain.len() - 2..].join(" → ")
        )
    }
}

/// `#[cfg(test)]`-guarded regions of `toks` as inclusive `(start, end)`
/// line ranges (attribute line through the item's closing brace).
fn cfg_test_regions(toks: &[&Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attr = is_punct(toks, i, "#")
            && is_punct(toks, i + 1, "[")
            && ident_at(toks, i + 2) == Some("cfg")
            && is_punct(toks, i + 3, "(")
            && ident_at(toks, i + 4) == Some("test")
            && is_punct(toks, i + 5, ")")
            && is_punct(toks, i + 6, "]");
        if !attr {
            i += 1;
            continue;
        }
        let start = toks[i].line;
        let mut end = start;
        let mut j = i + 7;
        while j < toks.len() {
            if is_punct(toks, j, ";") {
                end = toks[j].line;
                break;
            }
            if is_punct(toks, j, "{") {
                let mut depth = 1usize;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if is_punct(toks, j, "{") {
                        depth += 1;
                    } else if is_punct(toks, j, "}") {
                        depth -= 1;
                    }
                    j += 1;
                }
                end = toks[j.saturating_sub(1)].line;
                break;
            }
            j += 1;
        }
        out.push((start, end.max(start)));
        i = j.max(i + 7);
    }
    out
}

const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "mod", "trait", "type", "const", "static", "union",
];

/// Names a vendored stub declares (items, `use` path segments, macros) —
/// deliberately a superset: drift detection must not false-positive.
fn collect_declared(toks: &[&Token], set: &mut HashSet<String>) {
    let mut i = 0;
    while i < toks.len() {
        match ident_at(toks, i) {
            Some("macro_rules") if is_punct(toks, i + 1, "!") => {
                if let Some(name) = ident_at(toks, i + 2) {
                    set.insert(name.to_string());
                }
            }
            Some("use") => {
                let mut j = i + 1;
                while j < toks.len() && !is_punct(toks, j, ";") {
                    if let Some(name) = ident_at(toks, j) {
                        set.insert(name.to_string());
                    }
                    j += 1;
                }
                i = j;
            }
            Some(kw) if ITEM_KEYWORDS.contains(&kw) => {
                if let Some(name) = ident_at(toks, i + 1) {
                    set.insert(name.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Run every rule over `files` (workspace-relative `(path, contents)` pairs)
/// against the `ATOMICS.md` and `SAFETY.md` texts, returning findings
/// sorted by path/line.
pub fn lint_workspace(
    files: &[(String, String)],
    atomics_md: Option<&str>,
    safety_md: Option<&str>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lexed: Vec<(&str, Vec<Token>)> = files.iter().map(|(p, s)| (p.as_str(), lex(s))).collect();
    let waivers: HashMap<&str, Vec<Waiver>> = lexed
        .iter()
        .map(|(p, tokens)| (*p, parse_waivers(p, tokens, &mut findings)))
        .collect();
    let allow = |waivers: &HashMap<&str, Vec<Waiver>>, path: &str, rule: &str, line: u32| {
        waivers.get(path).is_some_and(|ws| waived(ws, rule, line))
    };

    // atomics-audit: sites vs the checked-in table, both directions.
    let sites = atomics_sites(files);
    let mut rows = atomics_md
        .map(|md| parse_audit(md, &mut findings))
        .unwrap_or_default();
    for (path, line, ordering) in &sites {
        match rows
            .iter_mut()
            .find(|r| r.path == *path && r.line == *line && r.ordering == *ordering)
        {
            Some(row) => {
                row.used = true;
                if !row.justified {
                    findings.push(Finding {
                        path: path.clone(),
                        line: *line,
                        rule: "atomics-audit",
                        message: format!(
                            "`Ordering::{ordering}` is listed in ATOMICS.md but has no \
                             justification"
                        ),
                    });
                }
            }
            None => findings.push(Finding {
                path: path.clone(),
                line: *line,
                rule: "atomics-audit",
                message: format!(
                    "`Ordering::{ordering}` site is not in the ATOMICS.md audit table \
                     (regenerate rows with `viderec-lint --print-atomics-rows`)"
                ),
            }),
        }
    }
    for row in rows.iter().filter(|r| !r.used) {
        findings.push(Finding {
            path: "ATOMICS.md".into(),
            line: row.row_line,
            rule: "atomics-audit",
            message: format!(
                "stale row: no `Ordering::{}` site at `{}:{}` anymore",
                row.ordering, row.path, row.line
            ),
        });
    }

    // unsafe-audit: every site needs a SAFETY comment and a justified
    // SAFETY.md row; stale rows fail. Not waivable — the table is the
    // escape hatch.
    let usites = unsafe_sites(files);
    let mut srows = safety_md
        .map(|md| parse_safety(md, &mut findings))
        .unwrap_or_default();
    for (path, line, kind, has_comment) in &usites {
        if !has_comment {
            findings.push(Finding {
                path: path.clone(),
                line: *line,
                rule: "unsafe-audit",
                message: format!(
                    "`unsafe` {kind} without a `// SAFETY:` comment directly above it \
                     (an `unsafe fn`/`unsafe impl` may use a `# Safety` doc section instead)"
                ),
            });
        }
        match srows
            .iter_mut()
            .find(|r| r.path == *path && r.line == *line && r.kind == *kind)
        {
            Some(row) => {
                row.used = true;
                if !row.justified {
                    findings.push(Finding {
                        path: path.clone(),
                        line: *line,
                        rule: "unsafe-audit",
                        message: format!(
                            "`unsafe` {kind} is listed in SAFETY.md but has no justification"
                        ),
                    });
                }
            }
            None => findings.push(Finding {
                path: path.clone(),
                line: *line,
                rule: "unsafe-audit",
                message: format!(
                    "`unsafe` {kind} is not in the SAFETY.md audit table (regenerate rows \
                     with `viderec-lint --print-safety-rows`)"
                ),
            }),
        }
    }
    for row in srows.iter().filter(|r| !r.used) {
        findings.push(Finding {
            path: "SAFETY.md".into(),
            line: row.row_line,
            rule: "unsafe-audit",
            message: format!(
                "stale row: no `unsafe` {} site at `{}:{}` anymore",
                row.kind, row.path, row.line
            ),
        });
    }

    for (path, tokens) in &lexed {
        let toks = significant(tokens);

        // serve-no-panic
        if path.starts_with("crates/serve/src/") {
            let regions = cfg_test_regions(&toks);
            let in_tests = |line: u32| regions.iter().any(|&(a, b)| a <= line && line <= b);
            for i in 0..toks.len() {
                let line = toks[i].line;
                if let Some(what) = panic_token(&toks, i) {
                    if !in_tests(line) && !allow(&waivers, path, "serve-no-panic", line) {
                        findings.push(Finding {
                            path: path.to_string(),
                            line,
                            rule: "serve-no-panic",
                            message: format!(
                                "`{what}` on the serve request path; degrade gracefully \
                                 (recover poison, return an error) instead of panicking"
                            ),
                        });
                    }
                }
            }
        }

        // wallclock
        if crate_src(path).is_some_and(|c| WALLCLOCK_CRATES.contains(&c))
            || path.starts_with("src/")
        {
            for i in 0..toks.len() {
                if ident_at(&toks, i) == Some("Instant")
                    && is_punct(&toks, i + 1, ":")
                    && is_punct(&toks, i + 2, ":")
                    && ident_at(&toks, i + 3) == Some("now")
                {
                    let line = toks[i].line;
                    if !allow(&waivers, path, "wallclock", line) {
                        findings.push(Finding {
                            path: path.to_string(),
                            line,
                            rule: "wallclock",
                            message: "`Instant::now()` in a deterministic crate; timing \
                                      belongs behind the tracer"
                                .into(),
                        });
                    }
                }
            }
        }

        // corpus-enumeration
        if ENUMERATION_SCOPE.iter().any(|p| p == path) {
            for i in 0..toks.len() {
                let line = toks[i].line;
                if ident_at(&toks, i) == Some("all_video_indices")
                    && (i == 0 || ident_at(&toks, i - 1) != Some("fn"))
                    && !allow(&waivers, path, "corpus-enumeration", line)
                {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: "corpus-enumeration",
                        message: "`all_video_indices()` call on a recommend path; gather \
                                  candidates through the inverted files and the LSB forest, \
                                  or waive the site with the reason it is sanctioned"
                            .into(),
                    });
                }
                if ident_at(&toks, i).is_some()
                    && is_punct(&toks, i + 1, ".")
                    && ident_at(&toks, i + 2) == Some("videos")
                    && is_punct(&toks, i + 3, ".")
                    && ident_at(&toks, i + 4) == Some("len")
                    && !allow(&waivers, path, "corpus-enumeration", line)
                {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: "corpus-enumeration",
                        message: "`.videos.len()` on a recommend path seeds a full-corpus \
                                  loop; go through the indexes, or waive the site with the \
                                  reason it is sanctioned"
                            .into(),
                    });
                }
            }
        }

        // emd-direct-call
        if EMD_HOT_SCOPE.iter().any(|p| path.starts_with(p)) {
            let regions = cfg_test_regions(&toks);
            let in_tests = |line: u32| regions.iter().any(|&(a, b)| a <= line && line <= b);
            for i in 0..toks.len() {
                let line = toks[i].line;
                if ident_at(&toks, i) == Some("emd_1d")
                    && is_punct(&toks, i + 1, "(")
                    && !in_tests(line)
                    && !allow(&waivers, path, "emd-direct-call", line)
                {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: "emd-direct-call",
                        message: "direct `emd_1d(` call on a hot path; it sorts and \
                                  allocates per call — score through the arena's presorted \
                                  SoA lanes (`emd_1d_soa[_capped]` via `kappa_exact_cached`), \
                                  or waive the site with the reason it is sanctioned"
                            .into(),
                    });
                }
            }
        }

        // durable-writes: every shipped tree except the durability crate
        // itself, which is the one place fsync discipline is reviewed.
        if (crate_src(path).is_some() || vendor_src(path).is_some() || path.starts_with("src/"))
            && !path.starts_with("crates/wal/src/")
        {
            let regions = cfg_test_regions(&toks);
            let in_tests = |line: u32| regions.iter().any(|&(a, b)| a <= line && line <= b);
            for i in 0..toks.len() {
                let line = toks[i].line;
                let hit = if ident_at(&toks, i) == Some("fs")
                    && is_punct(&toks, i + 1, ":")
                    && is_punct(&toks, i + 2, ":")
                    && ident_at(&toks, i + 3).is_some_and(|m| FS_WRITE_OPS.contains(&m))
                {
                    Some(format!("fs::{}", toks[i + 3].text))
                } else if ident_at(&toks, i) == Some("File")
                    && is_punct(&toks, i + 1, ":")
                    && is_punct(&toks, i + 2, ":")
                    && ident_at(&toks, i + 3)
                        .is_some_and(|m| matches!(m, "create" | "create_new" | "options"))
                {
                    Some(format!("File::{}", toks[i + 3].text))
                } else if ident_at(&toks, i) == Some("OpenOptions")
                    && is_punct(&toks, i + 1, ":")
                    && is_punct(&toks, i + 2, ":")
                    && ident_at(&toks, i + 3) == Some("new")
                {
                    Some("OpenOptions::new".to_string())
                } else {
                    None
                };
                if let Some(what) = hit {
                    if !in_tests(line) && !allow(&waivers, path, "durable-writes", line) {
                        findings.push(Finding {
                            path: path.to_string(),
                            line,
                            rule: "durable-writes",
                            message: format!(
                                "`{what}` outside `crates/wal`; durable state goes through \
                                 the WAL/snapshot subsystem — waive the site with the reason \
                                 this write is not durability-relevant"
                            ),
                        });
                    }
                }
            }
        }

        // signal-safe: the SIGPROF handler module stays async-signal-safe.
        if *path == SIGNAL_SAFE_SCOPE {
            let regions = cfg_test_regions(&toks);
            let in_tests = |line: u32| regions.iter().any(|&(a, b)| a <= line && line <= b);
            for i in 0..toks.len() {
                let line = toks[i].line;
                if let Some(what) = signal_unsafe_token(&toks, i) {
                    if !in_tests(line) && !allow(&waivers, path, "signal-safe", line) {
                        findings.push(Finding {
                            path: path.to_string(),
                            line,
                            rule: "signal-safe",
                            message: format!(
                                "`{what}` in the SIGPROF handler module; signal context \
                                 allows no allocation, formatting, locking, or panicking — \
                                 restructure, or waive the site with the reason it cannot \
                                 run inside the handler"
                            ),
                        });
                    }
                }
            }
        }

        // reader-locks
        if crate_src(path).is_some_and(|c| READER_CRATES.contains(&c)) {
            for t in &toks {
                if t.kind == TokenKind::Ident
                    && (t.text == "Mutex" || t.text == "RwLock")
                    && !allow(&waivers, path, "reader-locks", t.line)
                {
                    findings.push(Finding {
                        path: path.to_string(),
                        line: t.line,
                        rule: "reader-locks",
                        message: format!(
                            "blocking `{}` in a reader-side crate; readers stay \
                             lock-free (atomics and epoch snapshots)",
                            t.text
                        ),
                    });
                }
            }
        }
    }

    // vendor-drift: collect each stub's declared names, then check every
    // `stub_crate::segment` reference from non-vendor code.
    let mut declared: HashMap<String, HashSet<String>> = HashMap::new();
    for (path, tokens) in &lexed {
        if let Some(vc) = vendor_src(path) {
            collect_declared(
                &significant(tokens),
                declared.entry(vc.replace('-', "_")).or_default(),
            );
        }
    }
    for (path, tokens) in &lexed {
        if vendor_src(path).is_some() {
            continue;
        }
        let toks = significant(tokens);
        for i in 0..toks.len() {
            let Some(c) = ident_at(&toks, i) else {
                continue;
            };
            let Some(names) = declared.get(c) else {
                continue;
            };
            if is_punct(&toks, i + 1, ":") && is_punct(&toks, i + 2, ":") {
                if let Some(seg) = ident_at(&toks, i + 3) {
                    let line = toks[i].line;
                    if !names.contains(seg) && !allow(&waivers, path, "vendor-drift", line) {
                        findings.push(Finding {
                            path: path.to_string(),
                            line,
                            rule: "vendor-drift",
                            message: format!(
                                "`{c}::{seg}` is not declared anywhere in `vendor/{c}/src`; \
                                 the vendored stub has drifted from this usage"
                            ),
                        });
                    }
                }
            }
        }
    }

    // Transitive call-graph rules: parse every shipped file once, build the
    // workspace call graph, walk from the SIGPROF handler and the serve
    // request-path entry point. Files already covered by a whole-file scan
    // of the same rule are skipped so nothing is reported twice.
    let parsed: Vec<crate::callgraph::ParsedSource> = files
        .iter()
        .filter(|(p, _)| {
            crate::callgraph::file_module_path(p).is_some()
                && !p.starts_with("crates/check/")
                && !p.contains("/src/bin/")
        })
        .map(|(p, s)| {
            let pf = parse_file(s);
            let regions = cfg_test_regions(&pf.tokens.iter().collect::<Vec<_>>());
            (p.clone(), pf, regions)
        })
        .collect();
    let graph = CallGraph::build(&parsed);
    let parsed_of: HashMap<&str, &ParsedFile> =
        parsed.iter().map(|(p, pf, _)| (p.as_str(), pf)).collect();
    transitive_rule(
        &graph,
        &parsed_of,
        &waivers,
        &mut findings,
        "signal-safe",
        SIGNAL_ROOT,
        &|p| p == SIGNAL_SAFE_SCOPE,
        &signal_unsafe_token,
        "reachable from the SIGPROF handler",
        "signal context allows no allocation, formatting, locking, or panicking — \
         restructure, or waive the line (or the `fn` line for the whole body) with \
         the reason this cannot run inside the handler",
    );
    transitive_rule(
        &graph,
        &parsed_of,
        &waivers,
        &mut findings,
        "serve-no-panic",
        SERVE_ROOT,
        &|p| p.starts_with("crates/serve/src/"),
        &panic_token,
        "reachable from the serve request path",
        "degrade gracefully instead of panicking, or waive the site (or the `fn` \
         line for the whole body) with the reason the panic is a checked invariant, \
         not an input-reachable state",
    );

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

/// One transitive rule walk: BFS from `root`, scan each reachable function
/// body with `hit`, honoring waivers on the violating line or on the `fn`
/// line (which waives the whole body).
#[allow(clippy::too_many_arguments)]
fn transitive_rule(
    graph: &CallGraph,
    parsed_of: &HashMap<&str, &ParsedFile>,
    waivers: &HashMap<&str, Vec<Waiver>>,
    findings: &mut Vec<Finding>,
    rule: &'static str,
    root: (&str, &str),
    skip_file: &dyn Fn(&str) -> bool,
    hit: &dyn Fn(&[&Token], usize) -> Option<String>,
    reach_desc: &str,
    advice: &str,
) {
    let roots = graph.find(root.0, root.1);
    if roots.is_empty() {
        return;
    }
    let pred = graph.reachable(&roots);
    let mut nodes: Vec<usize> = pred.keys().copied().collect();
    nodes.sort_unstable();
    // Nested fns make body spans overlap; report each (line, token) once.
    let mut reported: HashSet<(String, u32, String)> = HashSet::new();
    for n in nodes {
        let node = &graph.nodes[n];
        if skip_file(&node.path) {
            continue;
        }
        let Some(pf) = parsed_of.get(node.path.as_str()) else {
            continue;
        };
        let f = &pf.fns[node.fn_index];
        let Some((b0, b1)) = f.body else {
            continue;
        };
        let allow_line = |line: u32| {
            waivers
                .get(node.path.as_str())
                .is_some_and(|ws| waived(ws, rule, line))
        };
        if allow_line(f.line) {
            continue;
        }
        let toks: Vec<&Token> = pf.tokens.iter().collect();
        for i in b0..b1.min(toks.len()) {
            let Some(what) = hit(&toks, i) else {
                continue;
            };
            let line = toks[i].line;
            if allow_line(line) || !reported.insert((node.path.clone(), line, what.clone())) {
                continue;
            }
            let chain = format_chain(&graph.chain(&pred, n));
            findings.push(Finding {
                path: node.path.clone(),
                line,
                rule,
                message: format!(
                    "`{what}` in `{}` is {reach_desc} (call chain: {chain}); {advice}",
                    node.display()
                ),
            });
        }
    }
}
