//! A lightweight Rust *item and expression* parser on top of [`crate::lex`]
//! — just enough structure for the call-graph rules: function items (with
//! their module / impl nesting), `unsafe` sites, call expressions, method
//! calls and macro invocations. Deliberately **not** a type checker:
//!
//! * Generics are skipped by angle-depth matching (with the `->`-at-depth
//!   rule so `Fn(u32) -> u64` bounds don't unbalance the count).
//! * Macro *definitions* (`macro_rules!`) are skipped wholesale; macro
//!   *invocations* inside function bodies are scanned for calls — their
//!   arguments are ordinary expressions that do run.
//! * Pattern positions are not distinguished from expressions, so enum
//!   variants in patterns can surface as "calls"; the call graph treats
//!   unresolvable names as external, so this over-approximation only ever
//!   *adds* edges (safe for "nothing reachable may do X" rules).
//!
//! The parser never fails: like the lexer, it recovers by skipping — rustc
//! rejects genuinely malformed files long before the linter sees them.

use crate::lex::{lex, significant, Token, TokenKind};

/// A call expression inside a function body: the path as written
/// (`["Self", "new"]`, `["signal", "arena"]`, `["foo"]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    /// Path segments as written at the call site.
    pub segments: Vec<String>,
    /// 1-based source line of the first segment.
    pub line: u32,
}

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's name (raw identifiers lose their `r#`).
    pub name: String,
    /// Inline `mod` nesting inside the file, outermost first.
    pub modules: Vec<String>,
    /// Enclosing `impl`/`trait` self type, when the fn is an associated item.
    pub self_ty: Option<String>,
    /// Whether the first parameter is (some form of) `self`.
    pub has_self: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body (== `line` for bodyless declarations).
    pub end_line: u32,
    /// Body span as `[start, end)` indices into the significant-token
    /// stream (the `{`..`}` inclusive); `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// Free/path calls in the body, in source order.
    pub calls: Vec<Call>,
    /// Method calls (`.name(`) in the body as `(name, line)`.
    pub methods: Vec<(String, u32)>,
    /// Macro invocations (`name!`) in the body as `(name, line)`.
    pub macros: Vec<(String, u32)>,
}

/// What kind of construct an [`UnsafeSite`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafeKind {
    /// An `unsafe { … }` block.
    Block,
    /// An `unsafe fn` item.
    Fn,
    /// An `unsafe impl`/`unsafe trait` item.
    Impl,
}

impl UnsafeKind {
    /// Short label used in findings and `SAFETY.md` rows.
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
        }
    }
}

/// One `unsafe` keyword in the source, with whether a safety comment
/// (a `// SAFETY:`-opening comment run directly above, or — for `fn`/`impl`
/// items — a doc comment carrying a `# Safety` section) covers it.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Construct kind.
    pub kind: UnsafeKind,
    /// A qualifying safety comment was found.
    pub has_safety_comment: bool,
}

/// The parse of one file: its significant tokens (for rule scans over
/// function-body spans) plus the extracted structure.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// The significant (comment-stripped) token stream the spans index.
    pub tokens: Vec<Token>,
    /// Function items, in source order.
    pub fns: Vec<FnDef>,
    /// Every `unsafe` keyword site.
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Keywords that look like `ident (` in expression position but are not
/// calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "match", "return", "for", "loop", "break", "continue", "as", "in", "let", "mut",
    "ref", "move",
];

enum Scope {
    Module(String),
    Impl(Option<String>),
    Fn(usize),
    Block,
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
    scopes: Vec<Scope>,
    fns: Vec<FnDef>,
    unsafe_sites: Vec<(u32, UnsafeKind)>,
    /// An `unsafe` modifier seen and not yet attached to `fn`/`impl`.
    pending_unsafe: Option<u32>,
}

impl Parser<'_> {
    fn punct(&self, at: usize, ch: &str) -> bool {
        self.toks
            .get(at)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ch)
    }

    fn ident(&self, at: usize) -> Option<&str> {
        self.toks
            .get(at)
            .and_then(|t| (t.kind == TokenKind::Ident).then_some(t.text.as_str()))
    }

    fn line(&self, at: usize) -> u32 {
        self.toks
            .get(at.min(self.toks.len().saturating_sub(1)))
            .map_or(1, |t| t.line)
    }

    /// Innermost enclosing fn index, if the cursor is inside a body.
    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(idx) => Some(*idx),
            _ => None,
        })
    }

    fn current_modules(&self) -> Vec<String> {
        self.scopes
            .iter()
            .filter_map(|s| match s {
                Scope::Module(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    fn current_self_ty(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Impl(t) => t.clone(),
            _ => None,
        })
    }

    /// Skips a balanced `<…>` generic group starting at `self.i` (which must
    /// point at `<`). A `>` preceded by `-` is an arrow inside an `Fn(…) ->
    /// T` bound, not a close.
    fn skip_generics(&mut self) {
        debug_assert!(self.punct(self.i, "<"));
        let mut depth = 0i32;
        while self.i < self.toks.len() {
            if self.punct(self.i, "<") {
                depth += 1;
            } else if self.punct(self.i, ">") && !(self.i > 0 && self.punct(self.i - 1, "-")) {
                depth -= 1;
                if depth <= 0 {
                    self.i += 1;
                    return;
                }
            } else if self.punct(self.i, ";") || self.punct(self.i, "{") {
                // Safety valve: a `<` that was really a comparison. Leave the
                // token for the main loop.
                return;
            }
            self.i += 1;
        }
    }

    /// Skips a balanced delimiter group starting at `self.i` (which must
    /// point at one of `(`, `[`, `{`).
    fn skip_group(&mut self) {
        let (open, close) = match self.toks.get(self.i).map(|t| t.text.as_str()) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => return,
        };
        let mut depth = 0usize;
        while self.i < self.toks.len() {
            if self.punct(self.i, open) {
                depth += 1;
            } else if self.punct(self.i, close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Parses an `impl` header from `self.i` (at the `impl` keyword) to its
    /// opening `{`, returning the self-type name (last path ident at angle
    /// depth zero, after `for` when present).
    fn parse_impl(&mut self) {
        self.i += 1; // `impl`
        if self.punct(self.i, "<") {
            self.skip_generics();
        }
        let mut last_ident: Option<String> = None;
        let mut depth = 0i32;
        while self.i < self.toks.len() {
            if self.punct(self.i, "<") {
                depth += 1;
            } else if self.punct(self.i, ">") && !(self.i > 0 && self.punct(self.i - 1, "-")) {
                depth -= 1;
            } else if depth == 0 {
                if self.punct(self.i, "{") {
                    self.scopes.push(Scope::Impl(last_ident));
                    self.i += 1;
                    return;
                }
                if self.punct(self.i, ";") {
                    // `impl Trait for Type;` does not exist, but recover.
                    self.i += 1;
                    return;
                }
                match self.ident(self.i) {
                    Some("for") => last_ident = None,
                    Some("where") => {
                        // Skip the where clause to the body.
                        while self.i < self.toks.len() && !self.punct(self.i, "{") {
                            self.i += 1;
                        }
                        continue;
                    }
                    Some(name) if name != "dyn" && name != "impl" => {
                        last_ident = Some(name.to_string());
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
    }

    /// Parses a `fn` item from `self.i` (at the `fn` keyword).
    fn parse_fn(&mut self, is_unsafe: bool) {
        let fn_line = self.line(self.i);
        self.i += 1; // `fn`
        let Some(name) = self.ident(self.i).map(str::to_string) else {
            return; // `fn(` — a fn-pointer type, not an item.
        };
        self.i += 1;
        if self.punct(self.i, "<") {
            self.skip_generics();
        }
        if !self.punct(self.i, "(") {
            return; // malformed; recover.
        }
        // Scan the parameter list for a leading `self`.
        let params_start = self.i;
        self.skip_group();
        let mut has_self = false;
        for j in params_start + 1..self.i.saturating_sub(1) {
            if self.punct(j, ",") {
                break;
            }
            if self.ident(j) == Some("self") {
                has_self = true;
                break;
            }
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        let mut depth = 0i32;
        let body_open = loop {
            if self.i >= self.toks.len() {
                break None;
            }
            if self.punct(self.i, "<") {
                depth += 1;
            } else if self.punct(self.i, ">") && !(self.i > 0 && self.punct(self.i - 1, "-")) {
                depth = (depth - 1).max(0);
            } else if self.punct(self.i, "(") || self.punct(self.i, "[") {
                self.skip_group();
                continue;
            } else if depth == 0 && self.punct(self.i, ";") {
                self.i += 1;
                break None;
            } else if depth == 0 && self.punct(self.i, "{") {
                break Some(self.i);
            }
            self.i += 1;
        };
        let idx = self.fns.len();
        self.fns.push(FnDef {
            name,
            modules: self.current_modules(),
            self_ty: self.current_self_ty(),
            has_self,
            is_unsafe,
            line: fn_line,
            end_line: fn_line,
            body: body_open.map(|b| (b, b)),
            calls: Vec::new(),
            methods: Vec::new(),
            macros: Vec::new(),
        });
        if body_open.is_some() {
            self.scopes.push(Scope::Fn(idx));
            self.i += 1; // past `{`
        }
    }

    /// Records calls/methods/macros at `self.i` when inside a fn body.
    /// Returns `true` when it consumed tokens.
    fn scan_expression(&mut self) -> bool {
        let Some(fn_idx) = self.current_fn() else {
            return false;
        };
        // Method call: `.name(` or `.name::<…>(`.
        if self.punct(self.i, ".") {
            if let Some(m) = self.ident(self.i + 1) {
                let m = m.to_string();
                let line = self.line(self.i + 1);
                let mut j = self.i + 2;
                if self.punct(j, ":") && self.punct(j + 1, ":") && self.punct(j + 2, "<") {
                    let save = self.i;
                    self.i = j + 2;
                    self.skip_generics();
                    j = self.i;
                    self.i = save;
                }
                if self.punct(j, "(") {
                    self.fns[fn_idx].methods.push((m, line));
                }
                self.i += 2;
                return true;
            }
            return false;
        }
        let Some(first) = self.ident(self.i).map(str::to_string) else {
            return false;
        };
        // Macro invocation: record the name, then keep scanning inside the
        // group — macro arguments are expressions that run.
        if self.punct(self.i + 1, "!") && !self.punct(self.i + 2, "=") {
            let line = self.line(self.i);
            self.fns[fn_idx].macros.push((first, line));
            self.i += 2;
            return true;
        }
        if NON_CALL_KEYWORDS.contains(&first.as_str()) {
            return false;
        }
        // Path: `a::b::c` with optional turbofish, then `(` makes it a call.
        let line = self.line(self.i);
        let mut segments = vec![first];
        let save = self.i;
        self.i += 1;
        loop {
            if self.punct(self.i, ":") && self.punct(self.i + 1, ":") {
                if self.punct(self.i + 2, "<") {
                    self.i += 2;
                    self.skip_generics();
                    continue;
                }
                if let Some(seg) = self.ident(self.i + 2) {
                    if NON_CALL_KEYWORDS.contains(&seg) {
                        break;
                    }
                    segments.push(seg.to_string());
                    self.i += 3;
                    continue;
                }
            }
            break;
        }
        if self.punct(self.i, "(") && self.ident(save.wrapping_sub(1)) != Some("fn") {
            self.fns[fn_idx].calls.push(Call { segments, line });
        }
        true
    }

    fn run(&mut self) {
        while self.i < self.toks.len() {
            // Attributes: skip the balanced `#[…]` / `#![…]` group.
            if self.punct(self.i, "#") {
                let mut j = self.i + 1;
                if self.punct(j, "!") {
                    j += 1;
                }
                if self.punct(j, "[") {
                    self.i = j;
                    self.skip_group();
                    continue;
                }
                self.i += 1;
                continue;
            }
            if self.punct(self.i, "{") {
                self.scopes.push(Scope::Block);
                self.i += 1;
                continue;
            }
            if self.punct(self.i, "}") {
                let line = self.line(self.i);
                if let Some(Scope::Fn(idx)) = self.scopes.last() {
                    let idx = *idx;
                    self.fns[idx].end_line = line;
                    if let Some((start, _)) = self.fns[idx].body {
                        self.fns[idx].body = Some((start, self.i + 1));
                    }
                }
                self.scopes.pop();
                self.i += 1;
                continue;
            }
            match self.ident(self.i) {
                Some("macro_rules") if self.punct(self.i + 1, "!") => {
                    // `macro_rules! name { … }`: skip the definition — its
                    // pattern tokens are not code.
                    self.i += 2;
                    if self.ident(self.i).is_some() {
                        self.i += 1;
                    }
                    self.skip_group();
                }
                Some("mod") => {
                    let name = self.ident(self.i + 1).map(str::to_string);
                    if self.punct(self.i + 2, "{") {
                        self.scopes.push(Scope::Module(name.unwrap_or_default()));
                        self.i += 3;
                    } else {
                        self.i += 1; // `mod name;` or expression field `.mod`…
                    }
                }
                Some("unsafe") => {
                    let line = self.line(self.i);
                    if self.punct(self.i + 1, "{") {
                        self.unsafe_sites.push((line, UnsafeKind::Block));
                        self.scopes.push(Scope::Block);
                        self.i += 2;
                    } else {
                        self.pending_unsafe = Some(line);
                        self.i += 1;
                    }
                }
                Some("impl") => {
                    if self.pending_unsafe.take().is_some() {
                        self.unsafe_sites
                            .push((self.line(self.i), UnsafeKind::Impl));
                    }
                    self.parse_impl();
                }
                Some("trait") => {
                    if self.pending_unsafe.take().is_some() {
                        self.unsafe_sites
                            .push((self.line(self.i), UnsafeKind::Impl));
                    }
                    // `trait Name … {`: the scope behaves like an impl of
                    // `Name` for default-method qualification.
                    let name = self.ident(self.i + 1).map(str::to_string);
                    self.i += 1;
                    while self.i < self.toks.len()
                        && !self.punct(self.i, "{")
                        && !self.punct(self.i, ";")
                    {
                        if self.punct(self.i, "<") {
                            self.skip_generics();
                        } else {
                            self.i += 1;
                        }
                    }
                    if self.punct(self.i, "{") {
                        self.scopes.push(Scope::Impl(name));
                        self.i += 1;
                    }
                }
                Some("fn") => {
                    let unsafe_line = self.pending_unsafe.take();
                    if let Some(l) = unsafe_line {
                        // Only a *declaring* fn marks the site; `fn(` types
                        // are filtered inside parse_fn, so check here too.
                        if self.ident(self.i + 1).is_some() {
                            self.unsafe_sites.push((l, UnsafeKind::Fn));
                        }
                    }
                    self.parse_fn(unsafe_line.is_some());
                }
                _ => {
                    if self.punct(self.i, ";") {
                        self.pending_unsafe = None;
                    }
                    if !self.scan_expression() {
                        self.i += 1;
                    }
                }
            }
        }
    }
}

/// Whether the fn at `line` falls inside a `#[cfg(test)]` region.
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Lines occupied by comments mapped to their texts, plus attribute lines —
/// the raw material for safety-comment detection.
fn comment_preamble(raw: &[Token], site_line: u32, want_safety_doc: bool) -> bool {
    use std::collections::HashMap;
    // line → concatenated comment text starting or spanning that line.
    let mut comment_on: HashMap<u32, String> = HashMap::new();
    let mut code_on: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut attr_on: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut k = 0;
    while k < raw.len() {
        let t = &raw[k];
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {
                let span = t.text.matches('\n').count() as u32;
                for l in t.line..=t.line + span {
                    comment_on.entry(l).or_default().push_str(&t.text);
                }
            }
            TokenKind::Punct if t.text == "#" => {
                // Attribute: mark every line the balanced `[...]` spans.
                let mut j = k + 1;
                if raw.get(j).is_some_and(|t| t.text == "!") {
                    j += 1;
                }
                if raw.get(j).is_some_and(|t| t.text == "[") {
                    let mut depth = 0i32;
                    while j < raw.len() {
                        match raw[j].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        attr_on.insert(raw[j].line);
                        j += 1;
                    }
                    attr_on.insert(raw[j.min(raw.len() - 1)].line);
                    attr_on.insert(t.line);
                    k = j + 1;
                    continue;
                }
                code_on.insert(t.line);
            }
            _ => {
                code_on.insert(t.line);
            }
        }
        k += 1;
    }
    // Walk upward from the site line through contiguous comment/attribute
    // lines (code-free); collect comment texts.
    let mut l = site_line - 1;
    let mut texts = Vec::new();
    while l >= 1 {
        let is_comment = comment_on.contains_key(&l) && !code_on.contains(&l);
        let is_attr = attr_on.contains(&l) && !code_on.contains(&l);
        if is_comment {
            texts.push(comment_on[&l].clone());
        } else if !is_attr {
            break;
        }
        if l == 1 {
            break;
        }
        l -= 1;
    }
    texts
        .iter()
        .any(|t| t.contains("SAFETY:") || (want_safety_doc && t.contains("# Safety")))
}

/// Parses one file. Never fails; see the module docs for what is and is not
/// modeled.
pub fn parse_file(src: &str) -> ParsedFile {
    let raw = lex(src);
    let toks: Vec<Token> = significant(&raw).into_iter().cloned().collect();
    let mut p = Parser {
        toks: &toks,
        i: 0,
        scopes: Vec::new(),
        fns: Vec::new(),
        unsafe_sites: Vec::new(),
        pending_unsafe: None,
    };
    p.run();
    let fns = std::mem::take(&mut p.fns);
    let unsafe_sites = std::mem::take(&mut p.unsafe_sites)
        .into_iter()
        .map(|(line, kind)| UnsafeSite {
            line,
            kind,
            has_safety_comment: comment_preamble(&raw, line, kind != UnsafeKind::Block),
        })
        .collect();
    ParsedFile {
        tokens: toks,
        fns,
        unsafe_sites,
    }
}
