//! The shipped SIGPROF sample-arena ring — `crates/prof/src/arena.rs`
//! compiled **verbatim, from the same file on disk** — against the
//! instrumented shim. There is no copy to drift: if the production source
//! changes, so does the code under model check.

/// The `sync` facade the included source resolves `super::sync` to.
pub mod sync {
    pub use crate::shim::{AtomicU64, AtomicUsize, Ordering};
}

#[path = "../../prof/src/arena.rs"]
pub mod arena;
