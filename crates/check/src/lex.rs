//! A hand-rolled, dependency-free Rust lexer — just enough fidelity for
//! `viderec-lint`'s token-level rules to be trustworthy:
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings (`r"…"`, `r#"…"#`, any `#` depth) and raw identifiers
//!   (`r#type`),
//! * byte/C strings and byte chars (`b"…"`, `br#"…"#`, `c"…"`, `b'x'`),
//! * char literals vs lifetimes (`'a'` vs `'a` in generics, `'_'` vs `'_`),
//! * line/doc/block comments preserved **as tokens** (waiver detection needs
//!   their text), while string and char literal *contents* never produce
//!   identifier tokens — `"Ordering::Acquire"` in a string is one `Str`
//!   token, so pattern rules cannot be fooled by prose.
//!
//! Everything is line-stamped. The lexer never fails: unterminated constructs
//! are closed at end of input (the linter's job is invariants, not parsing
//! diagnostics — rustc rejects genuinely malformed files long before CI runs
//! the linter).

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident,
    /// Lifetime (`'a`), including the leading quote in `text`.
    Lifetime,
    /// String literal of any flavor (normal/raw/byte/C), quotes included.
    Str,
    /// Char or byte-char literal, quotes included.
    Char,
    /// Numeric literal.
    Number,
    /// One punctuation character.
    Punct,
    /// `// …` comment (doc comments included), text without the newline.
    LineComment,
    /// `/* … */` comment (nesting included), full text.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text (see [`TokenKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        // Rules only dispatch on ASCII; multi-byte chars never start a
        // construct we care about, so byte peeking is sound here.
        self.src.get(self.pos + ahead).map(|&b| b as char)
    }

    fn peek_char(&self, ahead: usize) -> Option<char> {
        std::str::from_utf8(&self.src[(self.pos + ahead).min(self.src.len())..])
            .ok()
            .and_then(|s| s.chars().next())
    }

    fn bump(&mut self) -> Option<char> {
        let b = *self.src.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        // Skip UTF-8 continuation bytes so multi-byte chars advance cleanly.
        while matches!(self.src.get(self.pos), Some(b) if b & 0xC0 == 0x80) {
            self.pos += 1;
        }
        Some(b as char)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token { kind, text, line });
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.push(TokenKind::LineComment, start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// `"…"` body with escapes; the opening quote is already consumed.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// `r##"…"##` body; `hashes` is the `#` count, the opening quote is
    /// already consumed.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
    }

    /// `'…'` body with escapes; the opening quote is already consumed.
    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        while matches!(self.peek_char(0), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        self.push(TokenKind::Ident, start, line);
    }

    /// After a `'`: lifetime or char literal. `'a'` is a char, `'a` is a
    /// lifetime, `'_'` is a char, `'_` is a lifetime, `'\n'` is a char.
    fn quote(&mut self, start: usize, line: u32) {
        self.bump(); // '\''
        match self.peek_char(0) {
            Some(c) if is_ident_start(c) => {
                // One ident char followed directly by a closing quote is a
                // char literal; anything else is a lifetime.
                let after = {
                    let rest = std::str::from_utf8(&self.src[self.pos..]).unwrap_or("");
                    let mut it = rest.chars();
                    it.next();
                    it.next()
                };
                if after == Some('\'') {
                    self.bump();
                    self.bump(); // closing quote
                    self.push(TokenKind::Char, start, line);
                } else {
                    while matches!(self.peek_char(0), Some(c) if is_ident_continue(c)) {
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, start, line);
                }
            }
            Some(_) => {
                self.char_body();
                self.push(TokenKind::Char, start, line);
            }
            None => self.push(TokenKind::Punct, start, line),
        }
    }

    /// `r` / `b` / `c` prefixes: raw strings, raw identifiers, byte strings,
    /// byte chars, C strings — or a plain identifier starting with that
    /// letter.
    fn prefixed(&mut self, start: usize, line: u32) {
        let first = self.peek(0);
        let prefix_len = match (first, self.peek(1)) {
            (Some('b'), Some('r')) | (Some('c'), Some('r')) => 2,
            _ => 1,
        };
        match self.peek(prefix_len) {
            Some('"') => {
                for _ in 0..=prefix_len {
                    self.bump();
                }
                self.string_body();
                self.push(TokenKind::Str, start, line);
            }
            Some('#') => {
                // Count hashes: raw string (`r#"`/`br##"`) or raw ident
                // (`r#type`).
                let mut hashes = 0;
                while self.peek(prefix_len + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(prefix_len + hashes) == Some('"') {
                    for _ in 0..prefix_len + hashes + 1 {
                        self.bump();
                    }
                    self.raw_string_body(hashes);
                    self.push(TokenKind::Str, start, line);
                } else if first == Some('r') && hashes == 1 && prefix_len == 1 {
                    self.bump(); // r
                    self.bump(); // #
                    let ident_start = self.pos;
                    while matches!(self.peek_char(0), Some(c) if is_ident_continue(c)) {
                        self.bump();
                    }
                    let text =
                        String::from_utf8_lossy(&self.src[ident_start..self.pos]).into_owned();
                    self.out.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                    });
                } else {
                    self.bump();
                    self.ident(start, line);
                }
            }
            Some('\'') if first == Some('b') && prefix_len == 1 => {
                self.bump(); // b
                self.bump(); // '
                self.char_body();
                self.push(TokenKind::Char, start, line);
            }
            _ => {
                self.bump();
                self.ident(start, line);
            }
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            // A '.' continues the number only when a digit follows, so `1..5`
            // ends the literal at the range operator.
            let decimal_dot = c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit());
            if c.is_ascii_alphanumeric() || c == '_' || decimal_dot {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, line);
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek_char(0) {
            let (start, line) = (self.pos, self.line);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(start, line),
                '/' if self.peek(1) == Some('*') => self.block_comment(start, line),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Str, start, line);
                }
                '\'' => self.quote(start, line),
                'r' | 'b' | 'c' => self.prefixed(start, line),
                c if is_ident_start(c) => {
                    self.bump();
                    self.ident(start, line);
                }
                c if c.is_ascii_digit() => {
                    self.bump();
                    self.number(start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }
}

/// Lex `src` into a token stream. Never fails; see the module docs.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// The tokens rules should pattern-match on: comments removed (they carry
/// waivers, not code), everything else kept.
pub fn significant(tokens: &[Token]) -> Vec<&Token> {
    tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect()
}
