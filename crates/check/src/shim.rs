//! Instrumented stand-ins for the `std` concurrency vocabulary.
//!
//! These types mirror the exact API subset the shipped sources use through
//! their `sync` facades (`crates/trace/src/sync.rs`,
//! `crates/serve/src/sync.rs`, `vendor/crossbeam/src/sync.rs`), so the same
//! source files compile unmodified against either `std` (production) or this
//! module (model checking). Every operation is a visible step of the
//! interleaving explorer in [`crate::model`].
//!
//! Also here: deliberately *broken* variants ([`DemotedAtomicU64`],
//! [`LossyCondvar`]) used by the `broken_*` inclusion modules to prove the
//! checker actually catches the bug classes the shipped orderings prevent.

use crate::model;
use std::ops::{Add, Deref, DerefMut, Sub};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Memory ordering, mirroring [`std::sync::atomic::Ordering`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Ordering {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

fn load_sync(ord: Ordering) -> model::Hb {
    model::Hb {
        acquire: matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst),
        release: false,
        seq_cst: ord == Ordering::SeqCst,
    }
}

fn store_sync(ord: Ordering) -> model::Hb {
    model::Hb {
        acquire: false,
        release: matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst),
        seq_cst: ord == Ordering::SeqCst,
    }
}

fn rmw_sync(ord: Ordering) -> model::Hb {
    model::Hb {
        acquire: matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst),
        release: matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst),
        seq_cst: ord == Ordering::SeqCst,
    }
}

/// Model-checked [`std::sync::atomic::AtomicU64`].
pub struct AtomicU64 {
    id: usize,
}

impl AtomicU64 {
    /// Registers the atomic with the current execution.
    pub fn new(v: u64) -> Self {
        AtomicU64 {
            id: model::register_atomic(v),
        }
    }

    /// Load; `Relaxed`/`Acquire` loads branch over every visible store.
    pub fn load(&self, ord: Ordering) -> u64 {
        model::atomic_load(self.id, load_sync(ord))
    }

    /// Store; `Release`-or-stronger publishes the writer's clock.
    pub fn store(&self, v: u64, ord: Ordering) {
        model::atomic_store(self.id, v, store_sync(ord));
    }

    /// Atomic add returning the previous value.
    pub fn fetch_add(&self, delta: u64, ord: Ordering) -> u64 {
        model::atomic_rmw(self.id, rmw_sync(ord), |old| Some(old.wrapping_add(delta)))
    }

    /// Compare-exchange with distinct success/failure orderings.
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        model::atomic_cas(self.id, current, new, rmw_sync(success), load_sync(failure))
    }

    /// Weak compare-exchange. The model never fails spuriously (spurious
    /// failure only widens the retry loop the strong form already explores),
    /// so this is the strong CAS under another name.
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl std::fmt::Debug for AtomicU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicU64").field("id", &self.id).finish()
    }
}

/// Broken-by-construction atomic: every store is demoted to `Relaxed`, no
/// matter what ordering the caller asked for. Compiling the shipped seqlock
/// against this (see `crate::broken_ring`) makes its `Release` version
/// publication invisible to readers' `Acquire` loads, so the checker must
/// find a torn read — proving the real ordering is load-bearing.
#[derive(Debug)]
pub struct DemotedAtomicU64 {
    inner: AtomicU64,
}

impl DemotedAtomicU64 {
    /// See [`AtomicU64::new`].
    pub fn new(v: u64) -> Self {
        DemotedAtomicU64 {
            inner: AtomicU64::new(v),
        }
    }

    /// See [`AtomicU64::load`] (orderings honored on the load side).
    pub fn load(&self, ord: Ordering) -> u64 {
        self.inner.load(ord)
    }

    /// Store with the ordering forced down to `Relaxed`.
    pub fn store(&self, v: u64, _ord: Ordering) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// See [`AtomicU64::fetch_add`], demoted to `Relaxed`.
    pub fn fetch_add(&self, delta: u64, _ord: Ordering) -> u64 {
        self.inner.fetch_add(delta, Ordering::Relaxed)
    }

    /// See [`AtomicU64::compare_exchange`], demoted to `Relaxed`.
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u64, u64> {
        self.inner
            .compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }
}

/// Model-checked [`std::sync::atomic::AtomicUsize`]; stored as a model
/// `u64` (the model's word size) with lossless casts — arena cursors never
/// approach `u64::MAX`.
pub struct AtomicUsize {
    inner: AtomicU64,
}

impl AtomicUsize {
    /// Registers the atomic with the current execution.
    pub fn new(v: usize) -> Self {
        AtomicUsize {
            inner: AtomicU64::new(v as u64),
        }
    }

    /// See [`AtomicU64::load`].
    pub fn load(&self, ord: Ordering) -> usize {
        self.inner.load(ord) as usize
    }

    /// See [`AtomicU64::store`].
    pub fn store(&self, v: usize, ord: Ordering) {
        self.inner.store(v as u64, ord);
    }

    /// See [`AtomicU64::fetch_add`].
    pub fn fetch_add(&self, delta: usize, ord: Ordering) -> usize {
        self.inner.fetch_add(delta as u64, ord) as usize
    }

    /// See [`AtomicU64::compare_exchange`].
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.inner
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }

    /// See [`AtomicU64::compare_exchange_weak`].
    pub fn compare_exchange_weak(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl std::fmt::Debug for AtomicUsize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicUsize")
            .field("id", &self.inner.id)
            .finish()
    }
}

/// Broken-by-construction [`AtomicUsize`]: every operation demoted to
/// `Relaxed`. Compiling the shipped sample arena against this (see
/// `crate::broken_arena`) strips the `Release` off the `committed` publish,
/// so a reader can see `committed == head` while record words are still the
/// initial zeroes — the torn/stale read `model_arena` must find.
#[derive(Debug)]
pub struct DemotedAtomicUsize {
    inner: AtomicUsize,
}

impl DemotedAtomicUsize {
    /// See [`AtomicUsize::new`].
    pub fn new(v: usize) -> Self {
        DemotedAtomicUsize {
            inner: AtomicUsize::new(v),
        }
    }

    /// See [`AtomicUsize::load`] (orderings honored on the load side, so the
    /// reader's `Acquire` rendezvous is genuine — the *writer's* demoted
    /// publish is the bug under test).
    pub fn load(&self, ord: Ordering) -> usize {
        self.inner.load(ord)
    }

    /// Store demoted to `Relaxed`.
    pub fn store(&self, v: usize, _ord: Ordering) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// See [`AtomicUsize::fetch_add`], demoted to `Relaxed`.
    pub fn fetch_add(&self, delta: usize, _ord: Ordering) -> usize {
        self.inner.fetch_add(delta, Ordering::Relaxed)
    }

    /// See [`AtomicUsize::compare_exchange`], demoted to `Relaxed`.
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<usize, usize> {
        self.inner
            .compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }

    /// See [`AtomicUsize::compare_exchange_weak`], demoted to `Relaxed`.
    pub fn compare_exchange_weak(
        &self,
        current: usize,
        new: usize,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<usize, usize> {
        self.compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-checked [`std::sync::Mutex`]. Mutual exclusion is enforced at the
/// model level (the scheduler never runs two holders); the inner `std` mutex
/// only provides storage and is therefore never contended.
pub struct Mutex<T> {
    id: usize,
    raw: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the model lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Set by [`Condvar::wait`] while the guard is logically released; a
    /// disarmed guard's drop is a no-op (the wait owns the release).
    released: bool,
}

impl<T> Mutex<T> {
    /// Registers the mutex with the current execution.
    pub fn new(value: T) -> Self {
        Mutex {
            id: model::register_mutex(),
            raw: std::sync::Mutex::new(value),
        }
    }

    /// Model-acquire; blocks (a forced handoff) while another model thread
    /// holds the lock. Never returns `Err`: model executions treat a panic
    /// while holding the lock as a property violation, not as poison.
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        model::mutex_lock(self.id);
        let inner = self
            .raw
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(MutexGuard {
            lock: self,
            inner: Some(inner),
            released: false,
        })
    }
}

impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately does not lock: Debug formatting must never become a
        // visible model operation.
        f.debug_struct("Mutex").field("id", &self.id).finish()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is armed")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is armed")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.released {
            return;
        }
        self.inner.take();
        model::mutex_unlock(self.lock.id);
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_timeout`], mirroring
/// [`std::sync::WaitTimeoutResult`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed
    }
}

/// Model-checked [`std::sync::Condvar`]. `notify_one` picks the woken
/// waiter as an explored choice point; timed waits branch between blocking
/// and firing the timeout immediately.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Registers the condvar with the current execution.
    pub fn new() -> Self {
        Condvar {
            id: model::register_condvar(),
        }
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout_us: Option<u64>,
    ) -> (MutexGuard<'a, T>, bool) {
        // Disarm: the model wait owns releasing and re-acquiring the lock.
        // If we unwind mid-wait (execution abort), the disarmed guard's drop
        // is a no-op, which is exactly right — we no longer hold the lock.
        guard.inner.take();
        guard.released = true;
        let timed_out = model::cond_wait(self.id, guard.lock.id, timeout_us);
        guard.inner = Some(
            guard
                .lock
                .raw
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        guard.released = false;
        (guard, timed_out)
    }

    /// Block until notified; releases and re-acquires the guard's mutex.
    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        let (guard, _) = self.wait_inner(guard, None);
        Ok(guard)
    }

    /// Block until notified or until `dur` of model time elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> std::sync::LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        let (guard, timed) = self.wait_inner(guard, Some(us));
        Ok((guard, WaitTimeoutResult { timed }))
    }

    /// Wake one waiter (scheduler-chosen among the current waiters).
    pub fn notify_one(&self) {
        model::cond_notify_one(self.id);
    }

    /// Wake every current waiter.
    pub fn notify_all(&self) {
        model::cond_notify_all(self.id);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Broken-by-construction condvar: `notify_all` silently does nothing
/// (`notify_one` still works). Compiling the shipped channel against this
/// (see `crate::broken_channel`) loses the disconnect broadcast that `Drop`
/// of the last `Sender` relies on, so a blocked `recv()` never learns the
/// channel died — the checker must find that deadlock.
pub struct LossyCondvar {
    inner: Condvar,
}

impl LossyCondvar {
    /// See [`Condvar::new`].
    pub fn new() -> Self {
        LossyCondvar {
            inner: Condvar::new(),
        }
    }

    /// See [`Condvar::wait`].
    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        self.inner.wait(guard)
    }

    /// See [`Condvar::wait_timeout`].
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> std::sync::LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        self.inner.wait_timeout(guard, dur)
    }

    /// See [`Condvar::notify_one`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// The bug: the broadcast is dropped on the floor.
    pub fn notify_all(&self) {
        // Still a visible step (so schedules line up with the honest build),
        // but wakes nobody.
        model::yield_point();
    }
}

impl Default for LossyCondvar {
    fn default() -> Self {
        LossyCondvar::new()
    }
}

// ---------------------------------------------------------------------------
// Instant
// ---------------------------------------------------------------------------

/// Model-checked [`std::time::Instant`] backed by the logical clock (one
/// microsecond per visible operation; timeouts jump it to their deadline).
/// Reading it is a visible operation — the value must be a deterministic
/// function of the schedule for replay to work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instant {
    micros: u64,
}

impl Instant {
    /// Current logical time.
    pub fn now() -> Instant {
        Instant {
            micros: model::now_micros(),
        }
    }

    /// Logical time elapsed since `self`.
    pub fn elapsed(&self) -> Duration {
        Instant::now() - *self
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        Instant {
            micros: self
                .micros
                .saturating_add(u64::try_from(d.as_micros()).unwrap_or(u64::MAX)),
        }
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, other: Instant) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(other.micros))
    }
}

pub use std::sync::Arc;
