//! Workspace call graph over [`crate::parse`] output, with the conservative
//! name resolution the transitive lint rules run on.
//!
//! # Names
//!
//! Every function gets a qualified name `[crate_seg, modules…, self_ty?,
//! name]`: `crate_seg` is `viderec_<dir>` for `crates/<dir>`, the directory
//! name (dashes to underscores) for `vendor/<dir>`, and `viderec` for the
//! root `src/`; module segments come from the file path (with `lib.rs`,
//! `main.rs` and `mod.rs` contributing none) plus inline `mod` nesting.
//!
//! # Resolution (documented conservatism)
//!
//! * Single-segment free calls prefer, in order: a free fn in the same
//!   module → same crate → any free fn in the workspace with that name.
//! * Multi-segment paths resolve by *suffix match* against qualified names
//!   (after normalizing `crate::` / `self::` / `super::` / `Self::`); when
//!   no suffix matches (e.g. the call goes through a re-export), they fall
//!   back to any free fn with the final name.
//! * Method calls (`.name(…)`) have no type information, so they edge to
//!   **every** workspace fn taking `self` with that name. This
//!   over-approximates reachability — safe for "nothing reachable may do X"
//!   rules, and the reason waivers exist.
//! * All cross-crate candidates are restricted to the caller's **inferred
//!   dependency closure**: crate A may resolve into crate B only when A's
//!   sources mention B's crate name (in `use` paths or qualified calls),
//!   transitively. Without this, `.load(…)` on an atomic in one crate would
//!   edge to every `fn load(&self)` in the workspace and drag unrelated
//!   crates into every reachability set.
//! * Unresolvable names are treated as external (std or dependency) and get
//!   no edge.
//!
//! Functions inside `#[cfg(test)]` regions and files under `/tests/` are
//! not nodes: test code is neither a root nor a callee of shipped paths.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::parse::{Call, ParsedFile};

/// One function node in the workspace call graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Workspace-relative file path.
    pub path: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Function name.
    pub name: String,
    /// Qualified module path: `[crate_seg, modules…]` (no self_ty / name).
    pub module: Vec<String>,
    /// `impl`/`trait` self type for associated fns.
    pub self_ty: Option<String>,
    /// Takes some form of `self`.
    pub has_self: bool,
    /// Index of the [`crate::parse::FnDef`] in its file's parse.
    pub fn_index: usize,
}

impl Node {
    /// `crate::module::Type::name`-style display name.
    pub fn display(&self) -> String {
        let mut parts = self.module.clone();
        if let Some(t) = &self.self_ty {
            parts.push(t.clone());
        }
        parts.push(self.name.clone());
        parts.join("::")
    }
}

/// The workspace call graph: nodes plus resolved edges.
pub struct CallGraph {
    /// All nodes, indexed by the edge lists.
    pub nodes: Vec<Node>,
    /// `edges[i]` = node indices `nodes[i]` may call.
    pub edges: Vec<Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
    /// Per crate_seg: the crates its sources may resolve into (the inferred
    /// dependency closure, itself included).
    dep_closure: HashMap<String, HashSet<String>>,
}

/// `crates/<dir>/src/a/b.rs` → `(crate_seg, ["a", "b"])`; `None` for files
/// outside the shipped module trees (tests, benches, examples).
pub fn file_module_path(path: &str) -> Option<(String, Vec<String>)> {
    let (crate_seg, rest) = if let Some(rest) = path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once("/src/")?;
        (format!("viderec_{}", name.replace('-', "_")), tail)
    } else if let Some(rest) = path.strip_prefix("vendor/") {
        let (name, tail) = rest.split_once("/src/")?;
        (name.replace('-', "_"), tail)
    } else if let Some(tail) = path.strip_prefix("src/") {
        ("viderec".to_string(), tail)
    } else {
        return None;
    };
    let mut mods: Vec<String> = rest
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    if let Some(last) = mods.last() {
        if last == "lib" || last == "main" || last == "mod" {
            mods.pop();
        }
    }
    Some((crate_seg, mods))
}

/// One shipped file ready for graph construction:
/// `(path, parse, cfg_test_regions)`.
pub type ParsedSource = (String, ParsedFile, Vec<(u32, u32)>);

impl CallGraph {
    /// Builds the graph from parsed files (`(path, parse, cfg_test_regions)`).
    pub fn build(files: &[ParsedSource]) -> CallGraph {
        let mut nodes = Vec::new();
        for (path, parsed, test_regions) in files {
            let Some((crate_seg, file_mods)) = file_module_path(path) else {
                continue;
            };
            for (fn_index, f) in parsed.fns.iter().enumerate() {
                if crate::parse::in_regions(test_regions, f.line) {
                    continue;
                }
                let mut module = Vec::with_capacity(1 + file_mods.len() + f.modules.len());
                module.push(crate_seg.clone());
                module.extend(file_mods.iter().cloned());
                module.extend(f.modules.iter().cloned());
                nodes.push(Node {
                    path: path.clone(),
                    line: f.line,
                    name: f.name.clone(),
                    module,
                    self_ty: f.self_ty.clone(),
                    has_self: f.has_self,
                    fn_index,
                });
            }
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.clone()).or_default().push(i);
        }
        // Infer the crate-dependency edges: crate A references crate B when
        // any identifier token in A's sources is B's crate_seg (comments and
        // strings are already stripped, so this means `use` paths and
        // qualified calls).
        let all_segs: HashSet<String> = files
            .iter()
            .filter_map(|(p, _, _)| file_module_path(p).map(|(seg, _)| seg))
            .collect();
        let mut refs: HashMap<String, HashSet<String>> = HashMap::new();
        for (path, pf, _) in files {
            let Some((seg, _)) = file_module_path(path) else {
                continue;
            };
            let entry = refs.entry(seg.clone()).or_default();
            for t in &pf.tokens {
                if t.kind == crate::lex::TokenKind::Ident
                    && t.text != seg
                    && all_segs.contains(&t.text)
                {
                    entry.insert(t.text.clone());
                }
            }
        }
        let mut dep_closure: HashMap<String, HashSet<String>> = HashMap::new();
        for seg in &all_segs {
            let mut closure: HashSet<String> = HashSet::new();
            let mut queue = vec![seg.clone()];
            while let Some(s) = queue.pop() {
                if closure.insert(s.clone()) {
                    if let Some(next) = refs.get(&s) {
                        queue.extend(next.iter().cloned());
                    }
                }
            }
            dep_closure.insert(seg.clone(), closure);
        }
        let mut graph = CallGraph {
            edges: vec![Vec::new(); nodes.len()],
            nodes,
            by_name,
            dep_closure,
        };
        let parsed_of: HashMap<&str, &ParsedFile> =
            files.iter().map(|(p, pf, _)| (p.as_str(), pf)).collect();
        for i in 0..graph.nodes.len() {
            let node = graph.nodes[i].clone();
            let f = &parsed_of[node.path.as_str()].fns[node.fn_index];
            let mut targets: Vec<usize> = Vec::new();
            for call in &f.calls {
                targets.extend(graph.resolve_call(&node, call));
            }
            for (m, _) in &f.methods {
                targets.extend(graph.resolve_method(&node, m));
            }
            targets.sort_unstable();
            targets.dedup();
            targets.retain(|&t| t != i);
            graph.edges[i] = targets;
        }
        graph
    }

    /// Whether `from` may resolve into the crate of node `c` (dependency
    /// closure check).
    fn in_closure(&self, from: &Node, c: usize) -> bool {
        self.dep_closure
            .get(&from.module[0])
            .is_some_and(|cl| cl.contains(&self.nodes[c].module[0]))
    }

    /// Resolves a path call from `from` to candidate node indices.
    pub fn resolve_call(&self, from: &Node, call: &Call) -> Vec<usize> {
        let mut segs: Vec<String> = Vec::new();
        let mut anchor: Option<Vec<String>> = None;
        for (k, s) in call.segments.iter().enumerate() {
            match s.as_str() {
                "crate" if k == 0 => anchor = Some(vec![from.module[0].clone()]),
                "self" if k == 0 => anchor = Some(from.module.clone()),
                "super" => {
                    let mut m = anchor.take().unwrap_or_else(|| from.module.clone());
                    m.pop();
                    anchor = Some(m);
                }
                "Self" => {
                    let Some(t) = &from.self_ty else {
                        return Vec::new();
                    };
                    segs.push(t.clone());
                }
                _ => segs.push(s.clone()),
            }
        }
        let Some(name) = segs.last() else {
            return Vec::new();
        };
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        let candidates: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&c| self.in_closure(from, c))
            .collect();
        fn qual(n: &Node) -> Vec<&String> {
            let mut q: Vec<&String> = n.module.iter().collect();
            if let Some(t) = &n.self_ty {
                q.push(t);
            }
            q.push(&n.name);
            q
        }
        if let Some(prefix) = anchor {
            // Anchored path: the full name is prefix ++ segs.
            let want: Vec<&String> = prefix.iter().chain(segs.iter()).collect();
            return candidates
                .iter()
                .copied()
                .filter(|&c| qual(&self.nodes[c]) == want)
                .collect();
        }
        if segs.len() == 1 {
            // Free single-segment call: same module → same crate → any free
            // fn with the name.
            let free: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| self.nodes[c].self_ty.is_none())
                .collect();
            for tier in [
                free.iter()
                    .copied()
                    .filter(|&c| self.nodes[c].module == from.module)
                    .collect::<Vec<_>>(),
                free.iter()
                    .copied()
                    .filter(|&c| self.nodes[c].module[0] == from.module[0])
                    .collect::<Vec<_>>(),
                free,
            ] {
                if !tier.is_empty() {
                    return tier;
                }
            }
            return Vec::new();
        }
        // Multi-segment: suffix match against qualified names; fall back to
        // free fns with the final name (re-exports hide the true path).
        let suffix: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| {
                let q = qual(&self.nodes[c]);
                q.len() >= segs.len()
                    && q[q.len() - segs.len()..] == segs.iter().collect::<Vec<_>>()
            })
            .collect();
        if !suffix.is_empty() {
            return suffix;
        }
        candidates
            .iter()
            .copied()
            .filter(|&c| self.nodes[c].self_ty.is_none())
            .collect()
    }

    /// Resolves a method call: every fn taking `self` with the name inside
    /// the caller's dependency closure (no type information — documented
    /// over-approximation).
    pub fn resolve_method(&self, from: &Node, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|c| {
                c.iter()
                    .copied()
                    .filter(|&i| self.nodes[i].has_self && self.in_closure(from, i))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Node indices whose fn is named `name` in file `path`.
    pub fn find(&self, path: &str, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|c| {
                c.iter()
                    .copied()
                    .filter(|&i| self.nodes[i].path == path)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// BFS reachability from `roots`; returns, per reached node, the
    /// predecessor edge used to reach it first (`usize::MAX` for roots).
    pub fn reachable(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut pred: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if pred.insert(r, usize::MAX).is_none() {
                queue.push_back(r);
            }
        }
        let mut seen: HashSet<usize> = roots.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            for &t in &self.edges[n] {
                if seen.insert(t) {
                    pred.insert(t, n);
                    queue.push_back(t);
                }
            }
        }
        pred
    }

    /// Call chain `root → … → node` as display names, for diagnostics.
    pub fn chain(&self, pred: &HashMap<usize, usize>, mut node: usize) -> Vec<String> {
        let mut out = vec![self.nodes[node].display()];
        while let Some(&p) = pred.get(&node) {
            if p == usize::MAX {
                break;
            }
            out.push(self.nodes[p].display());
            node = p;
        }
        out.reverse();
        out
    }
}
