//! The shipped `SnapshotCell` — `crates/serve/src/snapshot.rs` compiled
//! **verbatim, from the same file on disk** — against the instrumented shim.

/// The `sync` facade the included source resolves `super::sync` to.
pub mod sync {
    pub use crate::shim::{Arc, AtomicU64, Instant, Mutex, Ordering};
}

#[path = "../../serve/src/snapshot.rs"]
pub mod snapshot;
