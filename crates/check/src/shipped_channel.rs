//! The vendored crossbeam-style bounded channel —
//! `vendor/crossbeam/src/channel.rs` compiled **verbatim, from the same file
//! on disk** — against the instrumented shim.

/// The `sync` facade the included source resolves `super::sync` to.
pub mod sync {
    pub use crate::shim::{Arc, Condvar, Instant, Mutex};
}

#[path = "../../../vendor/crossbeam/src/channel.rs"]
pub mod channel;
