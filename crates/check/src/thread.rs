//! Model-thread spawn/join, mirroring the [`std::thread`] subset the model
//! tests use. Threads are real OS threads gated by the execution's baton —
//! see [`crate::model`].

use crate::model;
use std::sync::{Arc, Mutex, PoisonError};

/// Handle to a spawned model thread; mirrors [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawn a model thread. At most [`model::MAX_THREADS`] threads (including
/// the root closure) may exist per execution; exceeding that is reported as
/// a property violation of the test itself.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = model::spawn_thread(Box::new(move || {
        let value = f();
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
    }));
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Block (a forced handoff) until the thread finishes, join its clock,
    /// and return the closure's value. A panicking thread aborts the whole
    /// execution before any join observes it, so unlike `std` this returns
    /// `T` directly rather than a `Result`.
    pub fn join(self) -> T {
        model::join_thread(self.tid);
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined model thread left no result")
    }
}

/// Extra schedule point with no effect, mirroring [`std::thread::yield_now`].
pub fn yield_now() {
    model::yield_point();
}
