//! # viderec-check
//!
//! Correctness tooling for the workspace's hand-rolled concurrency, in two
//! independent halves:
//!
//! 1. **A deterministic interleaving explorer** ("loom-lite"): [`Model`]
//!    runs a closure once per schedule, driving every atomic access, lock,
//!    condvar wait/notify, spawn/join and clock read through recorded choice
//!    points — exhaustive bounded DFS for small configurations, seeded
//!    random walks beyond, exact replay from a printed choice string
//!    (`VIDEREC_CHECK_REPLAY`). The memory model is a C11 subset with
//!    per-atomic store histories and vector clocks, so missing
//!    `Release`/`Acquire` edges produce real stale reads, not just unlucky
//!    interleavings. See [`model`] for the full semantics.
//!
//! 2. **`viderec-lint`** (`cargo run -p viderec-check --bin viderec-lint`):
//!    a repo-invariant linter over a hand-rolled Rust lexer ([`lex`]) that
//!    enforces, among others, that every `Ordering::` site is justified in
//!    the checked-in `ATOMICS.md` audit table. See [`lint`] for the rule
//!    catalogue and the waiver syntax.
//!
//! The primitives under model check are **the shipped sources themselves** —
//! `crates/trace/src/ring.rs`, `crates/serve/src/snapshot.rs`,
//! `crates/prof/src/arena.rs` and `vendor/crossbeam/src/channel.rs` are
//! included by `#[path]` and compiled against the instrumented [`shim`] via
//! their `sync` facades, so there is no model copy to drift out of sync. The
//! [`broken_ring`], [`broken_channel`] and [`broken_arena`] modules compile
//! the *same* sources against deliberately weakened primitives; tests assert
//! the checker catches the resulting torn reads, lost wakeups and stale
//! sample records, which is the evidence that both the checker and the
//! shipped orderings are load-bearing.

#![warn(missing_docs)]

pub mod callgraph;
pub mod lex;
pub mod lint;
pub mod model;
pub mod parse;
pub mod shim;
pub mod thread;

// The shipped/broken pairs include the same source file twice on purpose —
// identical code, different `sync` primitives — so the duplicate-mod lint
// does not apply.
#[cfg(viderec_check)]
#[allow(clippy::duplicate_mod)]
pub mod broken_arena;
#[cfg(viderec_check)]
#[allow(clippy::duplicate_mod)]
pub mod broken_channel;
#[cfg(viderec_check)]
#[allow(clippy::duplicate_mod)]
pub mod broken_ring;
#[cfg(viderec_check)]
#[allow(clippy::duplicate_mod)]
pub mod shipped_arena;
#[cfg(viderec_check)]
#[allow(clippy::duplicate_mod)]
pub mod shipped_channel;
#[cfg(viderec_check)]
#[allow(clippy::duplicate_mod)]
pub mod shipped_ring;
#[cfg(viderec_check)]
pub mod shipped_snapshot;
#[cfg(viderec_check)]
pub mod shipped_wal;

pub use model::{Model, Report, MAX_THREADS};
