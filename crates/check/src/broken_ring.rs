//! The shipped seqlock source compiled against a **demoted** atomic whose
//! stores are all forced to `Relaxed` (see
//! [`crate::shim::DemotedAtomicU64`]). The version-publication store loses
//! its `Release` edge, so the model checker must be able to drive a reader
//! into accepting a torn record — the negative control proving the checker
//! (and the shipped ordering) actually do something.

/// A `sync` facade that silently swaps in the demoted atomic.
pub mod sync {
    pub use crate::shim::DemotedAtomicU64 as AtomicU64;
    pub use crate::shim::Ordering;
}

#[path = "../../trace/src/ring.rs"]
pub mod ring;
