//! Bench-regression diffing: compare a freshly generated `BENCH_*.json`
//! artifact against the committed baseline with per-metric tolerances.
//!
//! The engine is three layers, each testable on synthetic input:
//!
//! 1. a dependency-free JSON reader ([`Json::parse`]) — the bench artifacts
//!    are machine-written, so the reader accepts exactly standard JSON and
//!    nothing more;
//! 2. a flattener ([`flatten`]) turning a document into `path → f64` pairs.
//!    Array elements carrying a discriminator field (`strategy`, `stage`,
//!    `mode`, `videos`) are keyed by it (`results[strategy=CSF].speedup`),
//!    so reordering a results array never mispairs metrics;
//! 3. the differ ([`diff`]) — every flattened metric whose *leaf* name has a
//!    [`Spec`] is compared directionally against the baseline. Worsening
//!    past the spec's relative tolerance is a regression; a baseline metric
//!    absent from the fresh artifact is a failure too (a silently dropped
//!    metric is how a gate rots).
//!
//! Quick mode keeps only machine-independent specs — counters, rates and
//! recall that are deterministic given the seed — so the CI gate holds on
//! any runner, while a full diff on a calibrated host also gates the timing
//! metrics. [`trajectory_append`] records each fresh artifact's gated
//! metrics into `BENCH_TRAJECTORY.json`, the append-only history the perf
//! dashboards (and the next regression hunt) read.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers are `f64` — bench metrics, not ids.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            at: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.at != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`: numbers as-is, bools as 0/1.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// Renders back to compact JSON (stable member order; numbers in
    /// shortest-roundtrip form). Used to rewrite the trajectory file.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of document".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while matches!(
            self.b.get(self.at),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.at += 1;
        }
        std::str::from_utf8(&self.b[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.at) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = *self.b.get(self.at).ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {}", self.at))?;
                            self.at += 4;
                            // Surrogate pairs don't occur in bench output;
                            // map a lone surrogate to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at - 1)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar verbatim.
                    let rest = std::str::from_utf8(&self.b[self.at..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.b.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            members.push((key, self.value()?));
            self.ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

/// Fields that name an array element better than its index.
const DISCRIMINATORS: [&str; 4] = ["strategy", "stage", "mode", "videos"];

/// Flattens a document into `path → f64` pairs: numbers as-is, bools as
/// 0/1, strings and nulls skipped. See the module doc for array keying.
pub fn flatten(j: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk("", j, &mut out);
    out
}

fn walk(prefix: &str, j: &Json, out: &mut Vec<(String, f64)>) {
    match j {
        Json::Num(_) | Json::Bool(_) => {
            if let Some(v) = j.as_f64() {
                out.push((prefix.to_string(), v));
            }
        }
        Json::Obj(members) => {
            for (k, v) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(&path, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                let key = DISCRIMINATORS
                    .iter()
                    .find_map(|d| {
                        v.get(d).and_then(|val| match val {
                            Json::Str(s) => Some(format!("{d}={s}")),
                            Json::Num(n) => Some(format!("{d}={n}")),
                            _ => None,
                        })
                    })
                    .unwrap_or_else(|| i.to_string());
                walk(&format!("{prefix}[{key}]"), v, out);
            }
        }
        Json::Str(_) | Json::Null => {}
    }
}

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (speedup, recall, prune rate).
    HigherIsBetter,
    /// Smaller is better (latency, scanned ratio, error counts).
    LowerIsBetter,
}

/// Tolerance policy for one metric leaf name.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// The flattened path's final segment this spec gates.
    pub leaf: &'static str,
    /// Which direction is an improvement.
    pub dir: Direction,
    /// Allowed relative worsening before the diff fails (0.05 = 5%).
    pub rel_tol: f64,
    /// Deterministic given the seed — safe to gate on any CI runner.
    pub machine_independent: bool,
}

const fn spec(leaf: &'static str, dir: Direction, rel_tol: f64, mi: bool) -> Spec {
    Spec {
        leaf,
        dir,
        rel_tol,
        machine_independent: mi,
    }
}

use Direction::{HigherIsBetter as HI, LowerIsBetter as LO};

/// The gated metrics. Leaf names not listed here are informational only.
///
/// Tolerances: machine-independent counters get tight bounds (they only
/// move when the algorithm changes); wall-clock metrics get slack for
/// scheduler noise and are excluded from quick mode entirely.
pub const SPECS: &[Spec] = &[
    // -- machine-independent: counters, rates, exactness --
    spec("prune_rate", HI, 0.05, true),
    spec("exact_evals", LO, 0.05, true),
    spec("recall_at_20", HI, 0.0, true),
    spec("min_recall_at_20", HI, 0.0, true),
    spec("scanned_ratio", LO, 0.10, true),
    spec("max_scanned_ratio", LO, 0.10, true),
    spec("naive_identical", HI, 0.0, true),
    // -- wall-clock: same-host comparisons only --
    spec("speedup", HI, 0.25, false),
    spec("pruned_ms_per_query", LO, 0.30, false),
    spec("ms_per_query", LO, 0.40, false),
    spec("mean_ms_per_query", LO, 0.40, false),
    spec("emd_time_share", LO, 0.25, false),
    spec("throughput_rps", HI, 0.30, false),
    spec("p50_micros", LO, 0.50, false),
    spec("p99_micros", LO, 0.75, false),
];

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Row {
    /// Flattened metric path.
    pub key: String,
    /// Baseline value.
    pub base: f64,
    /// Fresh value (`None`: the metric vanished).
    pub cur: Option<f64>,
    /// Relative worsening (positive = worse, per the spec's direction).
    pub worsened: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Outcome per metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Ok,
    /// Better than baseline by more than the tolerance.
    Improved,
    /// Worse than baseline by more than the tolerance — fails the gate.
    Regressed,
    /// Present in the baseline, absent from the fresh artifact — fails.
    Missing,
}

/// The result of diffing one artifact pair.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every gated metric, baseline order.
    pub rows: Vec<Row>,
    /// Whether timing specs were skipped (quick mode).
    pub quick: bool,
}

impl DiffReport {
    /// Whether the gate fails (any regression or vanished metric).
    pub fn failed(&self) -> bool {
        self.rows
            .iter()
            .any(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
    }

    /// Human-readable table, worst first.
    pub fn render(&self, label: &str) -> String {
        let mut out = String::new();
        let (mut reg, mut miss, mut imp, mut ok) = (0, 0, 0, 0);
        for r in &self.rows {
            match r.verdict {
                Verdict::Regressed => reg += 1,
                Verdict::Missing => miss += 1,
                Verdict::Improved => imp += 1,
                Verdict::Ok => ok += 1,
            }
        }
        let _ = writeln!(
            out,
            "== bench-diff {label} ({} mode): {} gated, {ok} ok, {imp} improved, \
             {reg} regressed, {miss} missing ==",
            if self.quick { "quick" } else { "full" },
            self.rows.len(),
        );
        let mut sorted: Vec<&Row> = self.rows.iter().collect();
        sorted.sort_by(|a, b| {
            let rank = |v: Verdict| match v {
                Verdict::Missing => 0,
                Verdict::Regressed => 1,
                Verdict::Improved => 2,
                Verdict::Ok => 3,
            };
            rank(a.verdict)
                .cmp(&rank(b.verdict))
                .then(b.worsened.total_cmp(&a.worsened))
        });
        for r in sorted {
            let tag = match r.verdict {
                Verdict::Ok => "ok       ",
                Verdict::Improved => "improved ",
                Verdict::Regressed => "REGRESSED",
                Verdict::Missing => "MISSING  ",
            };
            match r.cur {
                Some(cur) => {
                    let _ = writeln!(
                        out,
                        "{tag} {:<60} {:>12.4} -> {:>12.4} ({:+.1}%)",
                        r.key,
                        r.base,
                        cur,
                        100.0 * r.worsened
                    );
                }
                None => {
                    let _ = writeln!(out, "{tag} {:<60} {:>12.4} -> (absent)", r.key, r.base);
                }
            }
        }
        out
    }
}

fn leaf_of(key: &str) -> &str {
    key.rsplit('.').next().unwrap_or(key)
}

fn spec_for(key: &str, quick: bool) -> Option<&'static Spec> {
    let leaf = leaf_of(key);
    SPECS
        .iter()
        .find(|s| s.leaf == leaf && (!quick || s.machine_independent))
}

/// Diffs two parsed artifacts. Every baseline metric with an (active) spec
/// is compared; quick mode gates only the machine-independent specs.
pub fn diff(base: &Json, cur: &Json, quick: bool) -> DiffReport {
    let base_flat = flatten(base);
    let cur_flat = flatten(cur);
    let mut rows = Vec::new();
    for (key, base_v) in &base_flat {
        let Some(s) = spec_for(key, quick) else {
            continue;
        };
        let cur_v = cur_flat.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        let row = match cur_v {
            None => Row {
                key: key.clone(),
                base: *base_v,
                cur: None,
                worsened: f64::INFINITY,
                verdict: Verdict::Missing,
            },
            Some(cur_v) => {
                let denom = base_v.abs().max(1e-9);
                let worsened = match s.dir {
                    Direction::HigherIsBetter => (base_v - cur_v) / denom,
                    Direction::LowerIsBetter => (cur_v - base_v) / denom,
                };
                let verdict = if worsened > s.rel_tol + 1e-12 {
                    Verdict::Regressed
                } else if worsened < -(s.rel_tol + 1e-12) {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                Row {
                    key: key.clone(),
                    base: *base_v,
                    cur: Some(cur_v),
                    worsened,
                    verdict,
                }
            }
        };
        rows.push(row);
    }
    DiffReport { rows, quick }
}

/// Appends one dated entry to the trajectory file (creating it on first
/// use): the gated metrics of a fresh artifact, keyed by flattened path.
/// The file is `{"entries": [...]}` — append-only history, newest last.
pub fn trajectory_append(path: &str, date: &str, label: &str, fresh: &Json) -> Result<(), String> {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(s) => Json::parse(&s).map_err(|e| format!("{path}: {e}"))?,
        Err(_) => Json::Obj(vec![("entries".to_string(), Json::Arr(Vec::new()))]),
    };
    let mut metrics = Vec::new();
    for (key, v) in flatten(fresh) {
        if spec_for(&key, false).is_some() {
            metrics.push((key, Json::Num(v)));
        }
    }
    let entry = Json::Obj(vec![
        ("date".to_string(), Json::Str(date.to_string())),
        ("bench".to_string(), Json::Str(label.to_string())),
        ("metrics".to_string(), Json::Obj(metrics)),
    ]);
    let Json::Obj(members) = &mut doc else {
        return Err(format!("{path}: not an object"));
    };
    match members.iter_mut().find(|(k, _)| k == "entries") {
        Some((_, Json::Arr(entries))) => entries.push(entry),
        _ => members.push(("entries".to_string(), Json::Arr(vec![entry]))),
    }
    // Pretty enough to diff in review: one entry per line.
    let mut out = String::from("{\"entries\": [\n");
    let Json::Obj(members) = &doc else {
        unreachable!()
    };
    if let Some((_, Json::Arr(entries))) = members.iter().find(|(k, _)| k == "entries") {
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            e.render(&mut out);
        }
    }
    out.push_str("\n]}\n");
    // viderec-lint: allow(durable-writes) — bench-history artifact, not
    // durable serving state; loss on crash only means re-running bench_diff.
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days; no date dependency).
pub fn today_utc() -> String {
    let days = (std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs()
        / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "bench": "synthetic",
        "results": [
            {"strategy": "CSF", "speedup": 2.5, "prune_rate": 0.20,
             "pruned_ms_per_query": 7.6, "recall_at_20": 1.0},
            {"strategy": "CSF-SAR-H", "speedup": 3.7, "prune_rate": 0.21,
             "pruned_ms_per_query": 4.7, "recall_at_20": 1.0}
        ],
        "points": [
            {"videos": 1000, "max_scanned_ratio": 0.30, "naive_identical": true}
        ]
    }"#;

    fn base() -> Json {
        Json::parse(BASE).unwrap()
    }

    #[test]
    fn parser_roundtrips_the_committed_shapes() {
        let j = base();
        assert_eq!(j.get("bench"), Some(&Json::Str("synthetic".to_string())));
        let mut out = String::new();
        j.render(&mut out);
        assert_eq!(Json::parse(&out).unwrap(), j);
        // Escapes and exponents survive.
        let tricky = r#"{"s": "a\"b\\c\ndA", "n": -1.5e3, "z": [true, null]}"#;
        let t = Json::parse(tricky).unwrap();
        assert_eq!(t.get("s"), Some(&Json::Str("a\"b\\c\ndA".to_string())));
        assert_eq!(t.get("n").and_then(Json::as_f64), Some(-1500.0));
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn flatten_keys_arrays_by_discriminator() {
        let flat = flatten(&base());
        let get = |k: &str| {
            flat.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("no {k} in {flat:?}"))
        };
        assert_eq!(get("results[strategy=CSF].speedup"), 2.5);
        assert_eq!(get("results[strategy=CSF-SAR-H].prune_rate"), 0.21);
        assert_eq!(get("points[videos=1000].max_scanned_ratio"), 0.30);
        assert_eq!(get("points[videos=1000].naive_identical"), 1.0);
        // Reordering the array does not change the keys.
        let swapped = BASE.replacen("CSF\"", "XX\"", 1); // rename, keep shape
        let flat2 = flatten(&Json::parse(&swapped).unwrap());
        assert!(flat2.iter().any(|(k, _)| k.contains("strategy=XX")));
    }

    #[test]
    fn identical_artifacts_pass() {
        let report = diff(&base(), &base(), false);
        assert!(!report.failed());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Ok));
        // Every spec'd leaf was gated: 2x(speedup, prune_rate, ms, recall)
        // + max_scanned_ratio + naive_identical.
        assert_eq!(report.rows.len(), 10);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        // prune_rate 0.21 -> 0.15 is a 28% drop; tolerance is 5%.
        let cur = BASE.replace("\"prune_rate\": 0.21", "\"prune_rate\": 0.15");
        let report = diff(&base(), &Json::parse(&cur).unwrap(), true);
        assert!(report.failed());
        let bad: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].key, "results[strategy=CSF-SAR-H].prune_rate");
        assert!(report.render("synthetic").contains("REGRESSED"));
    }

    #[test]
    fn improvement_is_reported_not_failed() {
        let cur = BASE.replace("\"speedup\": 3.7", "\"speedup\": 9.9");
        let report = diff(&base(), &Json::parse(&cur).unwrap(), false);
        assert!(!report.failed());
        assert!(report
            .rows
            .iter()
            .any(|r| r.verdict == Verdict::Improved
                && r.key == "results[strategy=CSF-SAR-H].speedup"));
    }

    #[test]
    fn missing_metric_fails() {
        let cur = BASE.replace("\"prune_rate\": 0.21,", "");
        let report = diff(&base(), &Json::parse(&cur).unwrap(), true);
        assert!(report.failed());
        assert!(report
            .rows
            .iter()
            .any(|r| r.verdict == Verdict::Missing
                && r.key == "results[strategy=CSF-SAR-H].prune_rate"));
        assert!(report.render("synthetic").contains("(absent)"));
    }

    #[test]
    fn quick_mode_ignores_timing_regressions() {
        // 10x slower + slight speedup loss: catastrophic on a calibrated
        // host, invisible to the machine-independent gate.
        let cur = BASE
            .replace(
                "\"pruned_ms_per_query\": 4.7",
                "\"pruned_ms_per_query\": 47.0",
            )
            .replace("\"speedup\": 3.7", "\"speedup\": 1.9");
        let quick = diff(&base(), &Json::parse(&cur).unwrap(), true);
        assert!(!quick.failed(), "{}", quick.render("synthetic"));
        let full = diff(&base(), &Json::parse(&cur).unwrap(), false);
        assert!(full.failed());
    }

    #[test]
    fn exact_specs_fail_on_any_drop() {
        let cur = BASE.replacen("\"recall_at_20\": 1.0", "\"recall_at_20\": 0.999", 1);
        let report = diff(&base(), &Json::parse(&cur).unwrap(), true);
        assert!(report.failed());
        let cur = BASE.replace("\"naive_identical\": true", "\"naive_identical\": false");
        assert!(diff(&base(), &Json::parse(&cur).unwrap(), true).failed());
    }

    #[test]
    fn trajectory_appends_and_reparses() {
        let dir = std::env::temp_dir().join(format!("viderec_bench_diff_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_TRAJECTORY.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        trajectory_append(path, "2026-08-07", "synthetic", &base()).unwrap();
        trajectory_append(path, "2026-08-08", "synthetic", &base()).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        let Some(Json::Arr(entries)) = doc.get("entries") else {
            panic!("no entries array");
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].get("date"),
            Some(&Json::Str("2026-08-07".to_string()))
        );
        let metrics = entries[1].get("metrics").expect("metrics object");
        assert_eq!(
            metrics
                .get("results[strategy=CSF-SAR-H].speedup")
                .and_then(Json::as_f64),
            Some(3.7)
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn today_utc_is_iso_shaped() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        assert!(d[..4].parse::<u32>().unwrap() >= 2024);
    }
}
