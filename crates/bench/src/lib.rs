//! # viderec-bench
//!
//! The benchmark harness regenerating every table and figure of §5.
//!
//! Effectiveness figures (7–11) and the silhouette comparison are driven by
//! dedicated binaries — one per figure, printing the same rows/series the
//! paper reports (run with `cargo run --release -p viderec-bench --bin
//! fig08_omega`, etc.):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2` | Table 2 (the query workload) |
//! | `silhouette_cmp` | §4.2.2 silhouette comparison |
//! | `fig07_content_measures` | Fig. 7 (ERP / DTW / κJ) |
//! | `fig08_omega` | Fig. 8 (ω sweep) |
//! | `fig09_subcommunities` | Fig. 9 (k sweep) |
//! | `fig10_compare` | Fig. 10 (AFFRF / CR / SR / CSF) |
//! | `fig11_updates_effect` | Fig. 11 (effectiveness under updates) |
//! | `fig12a_social_opt` | Fig. 12a (CSF vs CSF-SAR vs CSF-SAR-H time) |
//! | `fig12b_vs_cr` | Fig. 12b (CSF-SAR-H vs CR time) |
//! | `fig12c_update_cost` | Fig. 12c (social update cost) |
//! | `reproduce_all` | everything above in sequence |
//! | `calibrate` / `probe` | generator-diagnostics tools (not paper artefacts) |
//!
//! Microbenchmarks (criterion, `cargo bench`) cover the hot substrate paths
//! and the DESIGN.md ablations: EMD solvers, κJ matching variants, social
//! extraction vs spectral, hash/B⁺-tree/LSB operations, and exact vs indexed
//! KNN.

pub mod diff;

/// Shared defaults for the figure binaries.
pub mod scale {
    use viderec_eval::community::CommunityConfig;

    /// Seed used by every figure binary (reported in EXPERIMENTS.md).
    pub const SEED: u64 = 0xC0FFEE;

    /// The effectiveness-figure dataset (Figs. 7–11): 50 paper-hours, the
    /// smallest scale of §5.4 — large enough for stable metrics, small
    /// enough to regenerate in minutes.
    pub fn effectiveness_config() -> CommunityConfig {
        CommunityConfig {
            hours: 50.0,
            ..Default::default()
        }
    }

    /// The efficiency sweep scales of Fig. 12 (paper-hours).
    pub const EFFICIENCY_HOURS: [f64; 4] = [50.0, 100.0, 150.0, 200.0];

    /// A community at an explicit scale.
    pub fn config_at(hours: f64) -> CommunityConfig {
        CommunityConfig {
            hours,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::scale;

    #[test]
    fn scales_match_the_paper() {
        assert_eq!(scale::EFFICIENCY_HOURS, [50.0, 100.0, 150.0, 200.0]);
        assert_eq!(scale::effectiveness_config().hours, 50.0);
        assert_eq!(scale::config_at(75.0).hours, 75.0);
    }
}
