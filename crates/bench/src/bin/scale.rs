//! Scale bench for the index-gated retrieval path (DESIGN.md §11).
//!
//! Builds streamed corpora at 1k / 10k / 100k videos, then measures per
//! strategy and scale:
//!
//! * certified-exact gated latency (ms/query) and the scanned/corpus ratio;
//! * bit-identity of the certified gated top-k against the naive full scan;
//! * approximate-mode recall@20 against the same naive reference.
//!
//! Writes `BENCH_scale.json` and **fails** (exit 1) when a lock-down
//! regression trips: certified results diverging from the naive scan, a
//! scanned/corpus ratio above 0.2 at 10k+ videos, approx recall@20 below
//! 0.95 on the 10k corpus, or (full mode only) super-linear latency growth
//! from 10k to 100k.
//!
//! ```sh
//! cargo run --release -p viderec-bench --bin scale            # 1k/10k/100k
//! cargo run --release -p viderec-bench --bin scale -- --quick # 1k/10k
//! ```
//!
//! Knobs (environment variables):
//!
//! | var | default | meaning |
//! |---|---|---|
//! | `SCALE_QUERIES` | 6 | query videos per corpus point |
//! | `SCALE_K` | 20 | top-k per query |
//! | `SCALE_OUT` | BENCH_scale.json | output path |

use std::fmt::Write as _;
use std::time::Instant;
use viderec_core::{
    PruneBound, QueryVideo, Recommender, RecommenderConfig, RetrievalMode, Scored, Strategy, Tracer,
};
use viderec_eval::{StreamConfig, StreamingCommunity};

const SEED: u64 = 0x5CA1E;

const STRATEGIES: [Strategy; 5] = [
    Strategy::Cr,
    Strategy::Sr,
    Strategy::Csf,
    Strategy::CsfSar,
    Strategy::CsfSarH,
];

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fraction of the naive top-k the approximate list recovered. Zero-score
/// naive entries are excluded: they are arbitrary id-order padding the full
/// scan emits when fewer than k videos score at all, not recommendations a
/// retrieval scheme could meaningfully recover.
fn recall(approx: &[Scored], naive: &[Scored]) -> f64 {
    let relevant: Vec<_> = naive.iter().filter(|n| n.score > 0.0).collect();
    if relevant.is_empty() {
        return 1.0;
    }
    let hits = relevant
        .iter()
        .filter(|n| approx.iter().any(|a| a.video == n.video))
        .count();
    hits as f64 / relevant.len() as f64
}

struct StrategyRow {
    label: &'static str,
    ms_per_query: f64,
    scanned_ratio: f64,
    recall_at_20: f64,
    naive_identical: bool,
}

struct Point {
    videos: usize,
    users: usize,
    k_subcommunities: usize,
    build_ms: u128,
    rows: Vec<StrategyRow>,
}

impl Point {
    fn mean_ms(&self) -> f64 {
        self.rows.iter().map(|r| r.ms_per_query).sum::<f64>() / self.rows.len() as f64
    }

    fn max_ratio(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.scanned_ratio)
            .fold(0.0, f64::max)
    }

    fn min_recall(&self) -> f64 {
        self.rows.iter().map(|r| r.recall_at_20).fold(1.0, f64::min)
    }
}

fn run_point(videos: usize, queries_n: usize, k: usize) -> Point {
    let stream = StreamingCommunity::new(StreamConfig::at_scale(videos, SEED));
    let users = stream.config().users;
    // Sub-communities scale with the corpus (the paper's k = 60 was tuned
    // for their crawl; on streamed corpora it leaves giant merged
    // communities whose posting lists defeat the gather), and the anchor
    // bound straddles the streamed cuboid value range (topic bands tile
    // [-100, 100] plus jitter) — the default ±16 domain is tuned for the
    // pixel pipeline's intensity deltas and leaves the certificate's κJ
    // ceilings needlessly loose here.
    let k_subcommunities = videos / 2;
    let cfg = RecommenderConfig {
        k_subcommunities,
        // Three times the default LSB fan-out: at 10k+ videos the top-20
        // content neighbourhood needs a deeper KNN cut for approximate-mode
        // recall, and the exact mode's certificate absorbs the difference
        // anyway.
        candidate_limit: 192,
        ..Default::default()
    }
    .with_prune_bound(PruneBound::Best {
        lo: -110.0,
        hi: 110.0,
    })
    .with_retrieval(RetrievalMode::GatedCertified);

    let t0 = Instant::now();
    let mut rec = Recommender::build(cfg, stream.materialize()).expect("build");
    let build_ms = t0.elapsed().as_millis();
    eprintln!("[scale] {videos} videos: built in {build_ms} ms");

    let queries: Vec<QueryVideo> = stream
        .query_ids(queries_n)
        .into_iter()
        .map(|id| QueryVideo {
            series: rec.series_of(id).expect("indexed").clone(),
            users: rec.users_of(id).expect("indexed").to_vec(),
        })
        .collect();

    // The naive full scan is the shared reference for both the exact-mode
    // bit-identity check and the approx-mode recall.
    let naive: Vec<Vec<Vec<Scored>>> = STRATEGIES
        .iter()
        .map(|&s| {
            queries
                .iter()
                .map(|q| rec.recommend_naive_excluding(s, q, k, &[]))
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    for (si, &strategy) in STRATEGIES.iter().enumerate() {
        rec.set_retrieval(RetrievalMode::GatedCertified);
        let mut scanned = 0u64;
        let mut corpus = 0u64;
        let mut identical = true;
        let t0 = Instant::now();
        let exact: Vec<Vec<Scored>> = queries
            .iter()
            .map(|q| {
                let (top, trace) = rec.recommend_traced(strategy, q, k, &[], Tracer::OFF);
                scanned += trace.stats.scanned;
                corpus += trace.corpus;
                top
            })
            .collect();
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        for (qi, top) in exact.iter().enumerate() {
            if top != &naive[si][qi] {
                identical = false;
                eprintln!(
                    "[scale] DIVERGENCE: {} at {videos} videos query {qi}",
                    strategy.label()
                );
            }
        }

        rec.set_retrieval(RetrievalMode::GatedApprox);
        let mean_recall = queries
            .iter()
            .enumerate()
            .map(|(qi, q)| recall(&rec.recommend(strategy, q, k), &naive[si][qi]))
            .sum::<f64>()
            / queries.len() as f64;

        rows.push(StrategyRow {
            label: strategy.label(),
            ms_per_query: exact_ms / queries.len() as f64,
            scanned_ratio: scanned as f64 / corpus as f64,
            recall_at_20: mean_recall,
            naive_identical: identical,
        });
    }

    Point {
        videos,
        users,
        k_subcommunities,
        build_ms,
        rows,
    }
}

fn render(points: &[Point], quick: bool, queries: usize, k: usize) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n\"bench\": \"scale\",\n");
    out.push_str(
        "\"description\": \"Index-gated retrieval at scale: certified-exact gated latency \
         and scanned/corpus ratio per strategy on streamed corpora, with bit-identity \
         against the naive full scan and approximate-mode recall@20.\",\n",
    );
    out.push_str("\"command\": \"cargo run --release -p viderec-bench --bin scale\",\n");
    let _ = writeln!(
        out,
        "\"quick\": {quick},\n\"seed\": {SEED},\n\"queries_per_point\": {queries},\n\"top_k\": {k},\n\"points\": ["
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"videos\": {}, \"users\": {}, \"k_subcommunities\": {}, \"build_ms\": {}, \
             \"mean_ms_per_query\": {:.3}, \"max_scanned_ratio\": {:.4}, \
             \"min_recall_at_20\": {:.4}, \"strategies\": {{",
            p.videos,
            p.users,
            p.k_subcommunities,
            p.build_ms,
            p.mean_ms(),
            p.max_ratio(),
            p.min_recall(),
        );
        for (j, r) in p.rows.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {{\"ms_per_query\": {:.3}, \"scanned_ratio\": {:.4}, \
                 \"recall_at_20\": {:.4}, \"naive_identical\": {}}}",
                r.label, r.ms_per_query, r.scanned_ratio, r.recall_at_20, r.naive_identical
            );
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let queries: usize = env_or("SCALE_QUERIES", 6);
    let k: usize = env_or("SCALE_K", 20);
    let out_path: String = env_or("SCALE_OUT", "BENCH_scale.json".to_string());
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    let points: Vec<Point> = sizes.iter().map(|&v| run_point(v, queries, k)).collect();

    let json = render(&points, quick, queries, k);
    // viderec-lint: allow(durable-writes) — benchmark report artifact, not
    // durable serving state; loss on crash only means re-running the bench.
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    println!("{json}");

    // Lock-down gates: fail loudly on any regression.
    let mut failed = false;
    for p in &points {
        for r in &p.rows {
            if !r.naive_identical {
                eprintln!(
                    "[scale] FAIL: {} at {} videos is not bit-identical to the naive scan",
                    r.label, p.videos
                );
                failed = true;
            }
        }
        if p.videos >= 10_000 && p.max_ratio() > 0.2 {
            eprintln!(
                "[scale] FAIL: scanned/corpus ratio {:.4} exceeds 0.2 at {} videos",
                p.max_ratio(),
                p.videos
            );
            failed = true;
        }
        if p.videos == 10_000 && p.min_recall() < 0.95 {
            eprintln!(
                "[scale] FAIL: approx recall@{k} {:.4} below 0.95 at 10k videos",
                p.min_recall()
            );
            failed = true;
        }
    }
    if !quick {
        let ms_10k = points
            .iter()
            .find(|p| p.videos == 10_000)
            .map(Point::mean_ms);
        let ms_100k = points
            .iter()
            .find(|p| p.videos == 100_000)
            .map(Point::mean_ms);
        if let (Some(a), Some(b)) = (ms_10k, ms_100k) {
            if b >= 10.0 * a {
                eprintln!(
                    "[scale] FAIL: latency grew {:.1}x from 10k to 100k (>= 10x is linear-or-worse)",
                    b / a
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("[scale] all gates passed");
}
