//! Fig. 9: effect of the sub-community count k on AR / AC / MAP (paper:
//! rises to k = 60, steady to 80).
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::k_sweep;
use viderec_eval::report::effectiveness_table;

fn main() {
    let community = Community::generate(scale::effectiveness_config());
    let ks = [20, 30, 40, 50, 60, 70, 80];
    let rows: Vec<(String, _)> = k_sweep(&community, &ks, scale::SEED)
        .into_iter()
        .map(|(k, m)| (format!("k={k}"), m))
        .collect();
    print!(
        "{}",
        effectiveness_table("Fig. 9: effect of k (SAR)", &rows)
    );
}
