//! The perf-regression gate: diff freshly generated `BENCH_*.json`
//! artifacts against their committed baselines and fail on any gated
//! metric that worsened past tolerance (or vanished).
//!
//! ```text
//! bench_diff [--quick] [--trajectory FILE] BASELINE=FRESH [BASELINE=FRESH ...]
//! ```
//!
//! * `--quick` — gate only machine-independent metrics (counters, rates,
//!   recall); use in CI where the runner is not the calibrated bench host.
//! * `--trajectory FILE` — append one dated entry per fresh artifact to the
//!   history file (`BENCH_TRAJECTORY.json` at the workspace root by
//!   convention).
//!
//! Exit status: 0 when every pair passes, 1 on any regression, missing
//! metric, or unreadable artifact — a CI-ready failing gate.

use viderec_bench::diff::{diff, today_utc, trajectory_append, Json};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn label_of(path: &str) -> String {
    let file = path.rsplit('/').next().unwrap_or(path);
    file.trim_start_matches("BENCH_")
        .trim_end_matches(".json")
        .to_string()
}

fn main() {
    let mut quick = false;
    let mut trajectory: Option<String> = None;
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trajectory" => match args.next() {
                Some(path) => trajectory = Some(path),
                None => {
                    eprintln!("--trajectory needs a file path");
                    std::process::exit(2);
                }
            },
            other => match other.split_once('=') {
                Some((base, fresh)) => pairs.push((base.to_string(), fresh.to_string())),
                None => {
                    eprintln!("expected BASELINE=FRESH, got '{other}'");
                    std::process::exit(2);
                }
            },
        }
    }
    if pairs.is_empty() {
        eprintln!(
            "usage: bench_diff [--quick] [--trajectory FILE] BASELINE=FRESH [BASELINE=FRESH ...]"
        );
        std::process::exit(2);
    }

    let date = today_utc();
    let mut failed = false;
    for (base_path, fresh_path) in &pairs {
        let (base, fresh) = match (load(base_path), load(fresh_path)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for err in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("bench-diff: {err}");
                }
                failed = true;
                continue;
            }
        };
        let label = label_of(base_path);
        let report = diff(&base, &fresh, quick);
        print!("{}", report.render(&label));
        failed |= report.failed();
        if let Some(traj) = &trajectory {
            if let Err(e) = trajectory_append(traj, &date, &label, &fresh) {
                eprintln!("bench-diff: trajectory: {e}");
                failed = true;
            } else {
                println!("appended {label} @ {date} to {traj}");
            }
        }
    }
    std::process::exit(i32::from(failed));
}
