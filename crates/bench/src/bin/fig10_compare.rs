//! Fig. 10: AFFRF vs CR vs SR vs CSF at the optimal parameters (ω = 0.7,
//! k = 60).
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::compare_approaches;
use viderec_eval::report::effectiveness_table;

fn main() {
    let community = Community::generate(scale::effectiveness_config());
    let rows: Vec<(String, _)> = compare_approaches(&community, scale::SEED)
        .into_iter()
        .map(|(l, m)| (l.to_string(), m))
        .collect();
    print!(
        "{}",
        effectiveness_table("Fig. 10: recommendation approaches", &rows)
    );
}
