//! Scratch probe: per-strategy top-5 mean true relevance (not a deliverable).
use viderec_core::{QueryVideo, Recommender, RecommenderConfig, Strategy};
use viderec_eval::community::{Community, CommunityConfig};

fn main() {
    let hours: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let community = Community::generate(CommunityConfig {
        hours,
        ..Default::default()
    });
    let r = Recommender::build(RecommenderConfig::default(), community.source_corpus()).unwrap();
    println!(
        "videos={} users={} live_communities={}",
        r.num_videos(),
        r.num_users(),
        r.live_communities()
    );
    for strategy in [
        Strategy::Cr,
        Strategy::Sr,
        Strategy::Csf,
        Strategy::CsfSar,
        Strategy::CsfSarH,
    ] {
        let mut total = 0.0;
        let queries = community.query_videos();
        for &q in &queries {
            let query = QueryVideo {
                series: r.series_of(q).unwrap().clone(),
                users: r.users_of(q).unwrap().to_vec(),
            };
            let recs = r.recommend_excluding(strategy, &query, 5, &[q]);
            total += recs
                .iter()
                .map(|x| community.relevance(q, x.video))
                .sum::<f64>()
                / recs.len().max(1) as f64;
        }
        println!(
            "{:<10} top5 mean rel {:.3}",
            strategy.label(),
            total / queries.len() as f64
        );
    }
}
