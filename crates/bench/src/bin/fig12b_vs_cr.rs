//! Fig. 12b: CSF-SAR-H vs CR recommendation time (paper: near-equal — the
//! social overhead is negligible next to content matching).
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::efficiency;

fn main() {
    println!("== Fig. 12b: CSF-SAR-H vs CR ==");
    println!(
        "{:<8} {:>14} {:>14} {:>8}",
        "hours", "CSF-SAR-H (s)", "CR (s)", "ratio"
    );
    for &hours in &scale::EFFICIENCY_HOURS {
        eprintln!("generating {hours}h community…");
        let community = Community::generate(scale::config_at(hours));
        let row = efficiency(&community);
        let get = |label: &str| {
            row.timings
                .iter()
                .find(|(l, _)| *l == label)
                .map(|&(_, t)| t)
                .unwrap()
        };
        let (sarh, cr) = (get("CSF-SAR-H"), get("CR"));
        println!(
            "{:<8} {:>14.4} {:>14.4} {:>8.2}",
            hours,
            sarh,
            cr,
            sarh / cr.max(1e-12)
        );
    }
}
