//! Fig. 12a: recommendation time of CSF vs CSF-SAR vs CSF-SAR-H over 50–200
//! paper-hours (paper: CSF slowest, SAR-H fastest).
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::{efficiency, EfficiencyRow};
use viderec_eval::report::efficiency_table;

fn main() {
    let rows: Vec<EfficiencyRow> = scale::EFFICIENCY_HOURS
        .iter()
        .map(|&hours| {
            eprintln!("generating {hours}h community…");
            let community = Community::generate(scale::config_at(hours));
            efficiency(&community)
        })
        .collect();
    print!(
        "{}",
        efficiency_table("Fig. 12a/b: recommendation time by strategy", &rows)
    );
}
