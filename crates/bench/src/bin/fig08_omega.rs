//! Fig. 8: effect of the fusion weight ω on AR / AC / MAP (paper optimum:
//! ω = 0.7).
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::omega_sweep;
use viderec_eval::report::effectiveness_table;

fn main() {
    let community = Community::generate(scale::effectiveness_config());
    let omegas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let rows: Vec<(String, _)> = omega_sweep(&community, &omegas, scale::SEED)
        .into_iter()
        .map(|(omega, m)| (format!("w={omega:.1}"), m))
        .collect();
    print!("{}", effectiveness_table("Fig. 8: effect of omega", &rows));
}
