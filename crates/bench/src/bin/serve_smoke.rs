//! CI smoke check for the observability surface.
//!
//! Starts the server in-process over a small community, issues a traced
//! recommendation, pushes one update batch through the maintenance thread,
//! then scrapes `/metrics`, `/debug/queries` and `/debug/trace/<id>` and
//! asserts every family and field the tracing work added is present and
//! coherent (stage sum bounded by the total, accounting identity, update
//! histograms populated). Exits nonzero on any failure.
//!
//! ```sh
//! cargo run --release -p viderec-bench --bin serve_smoke
//! ```

use std::time::{Duration, Instant};
use viderec_core::{Recommender, RecommenderConfig};
use viderec_eval::community::{Community, CommunityConfig};
use viderec_serve::client::{get, json_str, json_u64, post};
use viderec_serve::wire::{encode_age, encode_comment};
use viderec_serve::{start, ServeConfig};

const TIMEOUT: Duration = Duration::from_secs(10);

fn main() {
    eprintln!("generating community…");
    let community = Community::generate(CommunityConfig {
        hours: 5.0,
        ..Default::default()
    });
    let recommender = Recommender::build(RecommenderConfig::default(), community.source_corpus())
        .expect("valid corpus");
    let qid = community.query_videos()[0];
    let commenter = recommender.users_of(qid).expect("query video exists")[0].clone();
    let comment_video = community.videos[0].id;

    let handle = start(ServeConfig::default(), recommender).expect("server starts");
    let addr = handle.addr();
    eprintln!("serving on {addr}");

    // A traced request: the response must carry the trace id in the body.
    let resp = get(
        addr,
        &format!("/recommend?video={}&k=5&strategy=csf-sar-h", qid.0),
        TIMEOUT,
    )
    .expect("recommend");
    assert_eq!(resp.status, 200, "recommend: {}", resp.body);
    let trace = json_str(&resp.body, "trace").expect("traced response carries a trace id");
    assert_eq!(trace.len(), 16, "trace id is 16 hex chars: {trace}");
    println!("traced request ok: trace {trace}");

    // The id must resolve to a full stage breakdown whose stage sum is
    // bounded by the request total.
    let resp = get(addr, &format!("/debug/trace/{trace}"), TIMEOUT).expect("debug trace");
    assert_eq!(resp.status, 200, "debug trace: {}", resp.body);
    let total = json_u64(&resp.body, "total_micros").expect("total_micros");
    let stage_sum = json_u64(&resp.body, "stage_sum_micros").expect("stage_sum_micros");
    assert!(
        stage_sum <= total,
        "stage sum {stage_sum} µs exceeds total {total} µs"
    );
    for field in [
        "\"stages\":{\"queue\"",
        "\"emd\"",
        "\"prune_rate\"",
        "\"shard_breakdown\"",
    ] {
        assert!(resp.body.contains(field), "trace misses {field}");
    }
    println!("debug trace ok: total {total} µs, stage sum {stage_sum} µs");

    // Push one batch through the update pipeline so its histograms populate.
    let body = format!(
        "{}\n{}\n",
        encode_comment(comment_video, &commenter),
        encode_age(1)
    );
    let resp = post(addr, "/update", &body, TIMEOUT).expect("update");
    assert_eq!(resp.status, 202, "update: {}", resp.body);
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.epoch() < 2 {
        assert!(Instant::now() < deadline, "snapshot never advanced");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("update pipeline ok: epoch {}", handle.epoch());

    // The ring page must report its state and both trace lists.
    let resp = get(addr, "/debug/queries?n=8&slow=4", TIMEOUT).expect("debug queries");
    assert_eq!(resp.status, 200, "debug queries: {}", resp.body);
    assert!(
        resp.body.starts_with("{\"enabled\":true"),
        "tracing should be on by default: {}",
        resp.body
    );
    assert!(json_u64(&resp.body, "recorded").unwrap_or(0) >= 1);
    for field in [
        "\"capacity\":",
        "\"dropped\":",
        "\"recent\":[",
        "\"slowest\":[",
    ] {
        assert!(resp.body.contains(field), "queries page misses {field}");
    }
    println!("debug queries ok");

    // Every family the tracing work added must be present in /metrics, and
    // the accounting identity must hold (the scrape itself is the single
    // in-flight request at render time).
    let page = get(addr, "/metrics", TIMEOUT).expect("metrics").body;
    for needle in [
        "# TYPE serve_requests_submitted_total counter",
        "# TYPE serve_latency_micros summary",
        "# TYPE serve_query_stage_micros histogram",
        "# TYPE serve_update_queue_wait_micros histogram",
        "# TYPE serve_update_apply_micros histogram",
        "# TYPE serve_update_batch_events histogram",
        "# TYPE serve_snapshot_clone_micros histogram",
        "# TYPE serve_snapshot_publish_micros histogram",
        "# TYPE serve_snapshot_age_micros gauge",
        "# TYPE serve_trace_ring_capacity gauge",
        "serve_tracing_enabled 1",
    ] {
        assert!(page.contains(needle), "metrics page misses {needle:?}");
    }
    let sample = |name: &str| -> u64 {
        page.lines()
            .find_map(|l| {
                l.strip_prefix(name)?
                    .strip_prefix(' ')?
                    .trim()
                    .parse::<f64>()
                    .ok()
            })
            .unwrap_or_else(|| panic!("missing sample {name}")) as u64
    };
    assert!(sample("serve_query_traces_recorded_total") >= 1);
    assert!(sample("serve_query_stage_micros_count{stage=\"emd\"}") >= 1);
    assert!(sample("serve_update_apply_micros_count{kind=\"comments\"}") >= 1);
    assert!(sample("serve_update_apply_micros_count{kind=\"age\"}") >= 1);
    // Counts maintainer publishes only — the boot snapshot is not one.
    assert!(sample("serve_snapshots_published_total") >= 1);
    let submitted = sample("serve_requests_submitted_total");
    let served = sample("serve_requests_served_total");
    let rejected = sample("serve_requests_rejected_total");
    let expired = sample("serve_requests_deadline_expired_total");
    assert_eq!(
        submitted,
        served + rejected + expired + 1,
        "accounting identity (+1: the scrape is in flight while it renders)"
    );
    println!("metrics ok: {submitted} submitted, accounting identity holds");

    handle.shutdown();
    println!("serve smoke OK");
}
