//! CI smoke check for the observability surface.
//!
//! Starts the server in-process over a small community, issues a traced
//! recommendation, pushes one update batch through the maintenance thread,
//! then scrapes `/metrics`, `/debug/queries` and `/debug/trace/<id>` and
//! asserts every family and field the tracing work added is present and
//! coherent (stage sum bounded by the total, accounting identity, update
//! histograms populated). Also smokes the profiling surface: a
//! `/debug/profile` capture under live load must return collapsed stacks
//! that include the EMD kernel, and `/debug/heap` must see the counting
//! allocator. Exits nonzero on any failure.
//!
//! ```sh
//! cargo run --release -p viderec-bench --bin serve_smoke
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use viderec_core::{Recommender, RecommenderConfig};
use viderec_eval::community::{Community, CommunityConfig};
use viderec_serve::client::{get, json_str, json_u64, post};
use viderec_serve::wire::{encode_age, encode_comment};
use viderec_serve::{start, ServeConfig};

/// The smoke check runs the shipped configuration: allocation accounting on,
/// so `/debug/heap` and the per-stage `alloc_bytes` counters carry real data.
#[global_allocator]
static ALLOC: viderec_prof::CountingAlloc = viderec_prof::CountingAlloc::system();

const TIMEOUT: Duration = Duration::from_secs(10);

fn main() {
    eprintln!("generating community…");
    let community = Community::generate(CommunityConfig {
        hours: 5.0,
        ..Default::default()
    });
    let recommender = Recommender::build(RecommenderConfig::default(), community.source_corpus())
        .expect("valid corpus");
    let qid = community.query_videos()[0];
    let commenter = recommender.users_of(qid).expect("query video exists")[0].clone();
    let comment_video = community.videos[0].id;

    let handle = start(ServeConfig::default(), recommender).expect("server starts");
    let addr = handle.addr();
    eprintln!("serving on {addr}");

    // A traced request: the response must carry the trace id in the body.
    let resp = get(
        addr,
        &format!("/recommend?video={}&k=5&strategy=csf-sar-h", qid.0),
        TIMEOUT,
    )
    .expect("recommend");
    assert_eq!(resp.status, 200, "recommend: {}", resp.body);
    let trace = json_str(&resp.body, "trace").expect("traced response carries a trace id");
    assert_eq!(trace.len(), 16, "trace id is 16 hex chars: {trace}");
    println!("traced request ok: trace {trace}");

    // The id must resolve to a full stage breakdown whose stage sum is
    // bounded by the request total.
    let resp = get(addr, &format!("/debug/trace/{trace}"), TIMEOUT).expect("debug trace");
    assert_eq!(resp.status, 200, "debug trace: {}", resp.body);
    let total = json_u64(&resp.body, "total_micros").expect("total_micros");
    let stage_sum = json_u64(&resp.body, "stage_sum_micros").expect("stage_sum_micros");
    assert!(
        stage_sum <= total,
        "stage sum {stage_sum} µs exceeds total {total} µs"
    );
    for field in [
        "\"stages\":{\"queue\"",
        "\"emd\"",
        "\"prune_rate\"",
        "\"shard_breakdown\"",
        "\"alloc_count\"",
        "\"alloc_bytes\"",
    ] {
        assert!(resp.body.contains(field), "trace misses {field}");
    }
    println!("debug trace ok: total {total} µs, stage sum {stage_sum} µs");

    // Profile the server under live load: closed-loop drivers keep the EMD
    // path on-CPU while `/debug/profile` samples it over SIGPROF. The folded
    // output must be non-empty and its frames must include the EMD kernel
    // (`emd_1d_soa_capped` is #[inline(never)] precisely so it names a frame).
    let queries: Vec<u64> = community.query_videos().iter().map(|v| v.0).collect();
    let stop = AtomicBool::new(false);
    let profile = std::thread::scope(|s| {
        for c in 0..3usize {
            let (stop, queries) = (&stop, &queries);
            s.spawn(move || {
                let mut i = c;
                while !stop.load(Ordering::Relaxed) {
                    let video = queries[i % queries.len()];
                    i += 1;
                    let _ = get(
                        addr,
                        &format!("/recommend?video={video}&k=5&strategy=csf-sar-h"),
                        TIMEOUT,
                    );
                }
            });
        }
        std::thread::sleep(Duration::from_millis(200));
        let resp = get(addr, "/debug/profile?seconds=1&hz=199", TIMEOUT).expect("debug profile");
        stop.store(true, Ordering::Relaxed);
        resp
    });
    assert_eq!(profile.status, 200, "debug profile: {}", profile.body);
    let stacks = profile
        .body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .count();
    assert!(stacks > 0, "profile returned no stacks: {}", profile.body);
    assert!(
        profile.body.contains("emd_1d_soa_capped"),
        "EMD kernel missing from profile under load:\n{}",
        profile.body
    );
    // Bad parameters must be rejected, and the capture guard must be free
    // again now that the window above closed.
    let resp = get(addr, "/debug/profile?seconds=0", TIMEOUT).expect("bad profile params");
    assert_eq!(resp.status, 400, "seconds=0 should be a 400: {}", resp.body);
    println!("debug profile ok: {stacks} stacks, EMD kernel present");

    // Heap accounting: this binary installs the counting allocator, so the
    // page must say so and report live bytes.
    let resp = get(addr, "/debug/heap", TIMEOUT).expect("debug heap");
    assert_eq!(resp.status, 200, "debug heap: {}", resp.body);
    assert!(
        resp.body.contains("\"counting_allocator_installed\":true"),
        "counting allocator not seen: {}",
        resp.body
    );
    assert!(
        json_u64(&resp.body, "live_bytes").unwrap_or(0) > 0,
        "no live bytes reported: {}",
        resp.body
    );
    println!("debug heap ok");

    // Push one batch through the update pipeline so its histograms populate.
    let body = format!(
        "{}\n{}\n",
        encode_comment(comment_video, &commenter),
        encode_age(1)
    );
    let resp = post(addr, "/update", &body, TIMEOUT).expect("update");
    assert_eq!(resp.status, 202, "update: {}", resp.body);
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.epoch() < 2 {
        assert!(Instant::now() < deadline, "snapshot never advanced");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("update pipeline ok: epoch {}", handle.epoch());

    // The ring page must report its state and both trace lists.
    let resp = get(addr, "/debug/queries?n=8&slow=4", TIMEOUT).expect("debug queries");
    assert_eq!(resp.status, 200, "debug queries: {}", resp.body);
    assert!(
        resp.body.starts_with("{\"enabled\":true"),
        "tracing should be on by default: {}",
        resp.body
    );
    assert!(json_u64(&resp.body, "recorded").unwrap_or(0) >= 1);
    for field in [
        "\"capacity\":",
        "\"dropped\":",
        "\"recent\":[",
        "\"slowest\":[",
    ] {
        assert!(resp.body.contains(field), "queries page misses {field}");
    }
    println!("debug queries ok");

    // Every family the tracing work added must be present in /metrics, and
    // the accounting identity must hold (the scrape itself is the single
    // in-flight request at render time).
    let page = get(addr, "/metrics", TIMEOUT).expect("metrics").body;
    for needle in [
        "# TYPE serve_requests_submitted_total counter",
        "# TYPE serve_latency_micros summary",
        "# TYPE serve_query_stage_micros histogram",
        "# TYPE serve_update_queue_wait_micros histogram",
        "# TYPE serve_update_apply_micros histogram",
        "# TYPE serve_update_batch_events histogram",
        "# TYPE serve_snapshot_clone_micros histogram",
        "# TYPE serve_snapshot_publish_micros histogram",
        "# TYPE serve_snapshot_age_micros gauge",
        "# TYPE serve_trace_ring_capacity gauge",
        "serve_tracing_enabled 1",
        "# TYPE serve_query_stage_alloc_bytes histogram",
        "# TYPE serve_update_batch_alloc_bytes histogram",
        "# TYPE serve_process_rss_bytes gauge",
        "# TYPE serve_process_threads gauge",
        "# TYPE serve_process_cpu_user_seconds_total counter",
        "# TYPE serve_process_cpu_system_seconds_total counter",
        "# TYPE serve_process_voluntary_ctxt_switches_total counter",
        "# TYPE serve_process_heap_live_bytes gauge",
        "# TYPE serve_process_heap_allocated_bytes_total counter",
        "serve_process_heap_counting 1",
    ] {
        assert!(page.contains(needle), "metrics page misses {needle:?}");
    }
    let sample = |name: &str| -> u64 {
        page.lines()
            .find_map(|l| {
                l.strip_prefix(name)?
                    .strip_prefix(' ')?
                    .trim()
                    .parse::<f64>()
                    .ok()
            })
            .unwrap_or_else(|| panic!("missing sample {name}")) as u64
    };
    assert!(sample("serve_query_traces_recorded_total") >= 1);
    assert!(sample("serve_query_stage_micros_count{stage=\"emd\"}") >= 1);
    assert!(sample("serve_update_apply_micros_count{kind=\"comments\"}") >= 1);
    assert!(sample("serve_update_apply_micros_count{kind=\"age\"}") >= 1);
    // Counts maintainer publishes only — the boot snapshot is not one.
    assert!(sample("serve_snapshots_published_total") >= 1);
    // The maintainer records one alloc-bytes observation per drained batch.
    assert!(sample("serve_update_batch_alloc_bytes_count") >= 1);
    assert!(sample("serve_process_rss_bytes") > 0);
    assert!(sample("serve_process_threads") >= 2);
    let submitted = sample("serve_requests_submitted_total");
    let served = sample("serve_requests_served_total");
    let rejected = sample("serve_requests_rejected_total");
    let expired = sample("serve_requests_deadline_expired_total");
    assert_eq!(
        submitted,
        served + rejected + expired + 1,
        "accounting identity (+1: the scrape is in flight while it renders)"
    );
    println!("metrics ok: {submitted} submitted, accounting identity holds");

    handle.shutdown();
    println!("serve smoke OK");
}
