//! §4.2.2: Silhouette Coefficient of SubgraphExtraction vs spectral
//! clustering (paper: 0.498 vs 0.242). Also reports the uncapped
//! full-dimension spectral variant for transparency.
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::silhouette_comparison;

fn main() {
    let community = Community::generate(scale::effectiveness_config());
    let k = community.config().true_groups;
    let (ours, spectral) = silhouette_comparison(&community, k, scale::SEED);
    println!("== Silhouette comparison (k = {k}) ==");
    println!("SubgraphExtraction : {ours:.3}   (paper: 0.498)");
    println!("Spectral clustering: {spectral:.3}   (paper: 0.242)");
    println!("(spectral uses the practical embedding-dimension cap; see");
    println!(" viderec_social::spectral::DEFAULT_EMBED_DIMS and EXPERIMENTS.md)");
}
