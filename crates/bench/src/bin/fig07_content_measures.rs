//! Fig. 7: effect of the content relevance measure (ERP vs DTW vs κJ) on
//! AR / AC / MAP at top 5/10/20, content-only ranking.
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::content_measures;
use viderec_eval::report::effectiveness_table;

fn main() {
    let community = Community::generate(scale::effectiveness_config());
    let rows: Vec<(String, _)> = content_measures(&community, scale::SEED)
        .into_iter()
        .map(|(l, m)| (l.to_string(), m))
        .collect();
    print!(
        "{}",
        effectiveness_table("Fig. 7: content relevance measures", &rows)
    );
}
