//! Runs every table/figure reproduction in sequence (Figs. 7–12, Table 2,
//! the silhouette comparison) and prints them as one report. Expect this to
//! run for a while — the Fig. 12 sweep regenerates communities at four
//! scales.
use viderec_bench::scale;
use viderec_eval::community::{Community, TABLE2_TOPICS};
use viderec_eval::experiment::{
    compare_approaches, content_measures, efficiency, k_sweep, omega_sweep, silhouette_comparison,
    update_cost, update_effect,
};
use viderec_eval::report::{effectiveness_table, efficiency_table, update_cost_table};

fn main() {
    let community = Community::generate(scale::effectiveness_config());

    println!("== Table 2 ==");
    let queries = community.query_videos();
    for (t, label) in TABLE2_TOPICS.iter().enumerate() {
        let sources: Vec<String> = queries[2 * t..2 * t + 2]
            .iter()
            .map(|v| v.to_string())
            .collect();
        println!("q{} {:<16} {}", t + 1, label, sources.join(", "));
    }
    println!();

    let k = community.config().true_groups;
    let (ours, spectral) = silhouette_comparison(&community, k, scale::SEED);
    println!("== Silhouette (§4.2.2) ==");
    println!("SubgraphExtraction {ours:.3} vs spectral {spectral:.3}\n");

    let rows: Vec<(String, _)> = content_measures(&community, scale::SEED)
        .into_iter()
        .map(|(l, m)| (l.to_string(), m))
        .collect();
    println!("{}", effectiveness_table("Fig. 7: content measures", &rows));

    let omegas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let rows: Vec<(String, _)> = omega_sweep(&community, &omegas, scale::SEED)
        .into_iter()
        .map(|(omega, m)| (format!("w={omega:.1}"), m))
        .collect();
    println!("{}", effectiveness_table("Fig. 8: omega sweep", &rows));

    let rows: Vec<(String, _)> = k_sweep(&community, &[20, 40, 60, 80], scale::SEED)
        .into_iter()
        .map(|(k, m)| (format!("k={k}"), m))
        .collect();
    println!("{}", effectiveness_table("Fig. 9: k sweep", &rows));

    let rows: Vec<(String, _)> = compare_approaches(&community, scale::SEED)
        .into_iter()
        .map(|(l, m)| (l.to_string(), m))
        .collect();
    println!("{}", effectiveness_table("Fig. 10: approaches", &rows));

    let rows: Vec<(String, _)> = update_effect(&community, scale::SEED)
        .into_iter()
        .map(|(months, m)| (format!("+{months} mo"), m))
        .collect();
    println!("{}", effectiveness_table("Fig. 11: updates effect", &rows));

    let eff: Vec<_> = scale::EFFICIENCY_HOURS
        .iter()
        .map(|&hours| {
            eprintln!("generating {hours}h community for Fig. 12…");
            efficiency(&Community::generate(scale::config_at(hours)))
        })
        .collect();
    println!("{}", efficiency_table("Fig. 12a/b: efficiency", &eff));

    let cost = update_cost(&Community::generate(scale::config_at(200.0)));
    print!(
        "{}",
        update_cost_table("Fig. 12c: update cost (200h)", &cost)
    );
}
