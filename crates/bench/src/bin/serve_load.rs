//! Closed-loop load generator for the serving subsystem.
//!
//! Starts the server in-process over a synthetic community, then drives it
//! from closed-loop client threads (each issues the next request as soon as
//! the previous response lands) for a fixed duration, and writes
//! `BENCH_serve.json` with throughput, client-observed p50/p95/p99, and the
//! server-side stage breakdown scraped from `/metrics` and `/debug/queries`
//! (where the EMD time share, prune rate and admission-queue wait live).
//!
//! ```sh
//! cargo run --release -p viderec-bench --bin serve_load
//! ```
//!
//! Knobs (environment variables):
//!
//! | var | default | meaning |
//! |---|---|---|
//! | `SERVE_LOAD_SECONDS` | 10 | measured duration per strategy |
//! | `SERVE_LOAD_CLIENTS` | 4 | closed-loop client threads |
//! | `SERVE_LOAD_HOURS` | 10.0 | community scale (paper-hours) |
//! | `SERVE_LOAD_K` | 10 | top-k per request |
//! | `SERVE_LOAD_OUT` | BENCH_serve.json | output path |
//! | `SERVE_LOAD_PROFILE_SECONDS` | 5 | `/debug/profile` capture window mid-run |
//! | `SERVE_LOAD_UPDATE_SECONDS` | 5 | measured duration per durability mode |
//! | `SERVE_LOAD_WAL_DIR` | wal-scratch | scratch data dirs for the WAL modes |
//!
//! After the query-strategy runs, a **durability tax** section measures
//! `POST /update` throughput and latency with the WAL off, `fsync=batch`
//! (every acknowledged batch synced) and `fsync=interval:25` — the price of
//! each fsync policy in update acks per second.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use viderec_core::{Recommender, RecommenderConfig, Stage};
use viderec_eval::community::{Community, CommunityConfig};
use viderec_serve::client::{get, json_u64, post};
use viderec_serve::wire::encode_comment;
use viderec_serve::{start, start_durable, DurabilityConfig, FsyncPolicy, ServeConfig};

/// The server runs in-process, so installing the counting allocator here
/// makes the per-stage `alloc_bytes` trace counters and `/debug/heap` live
/// for the whole measured run — the configuration the serve binaries ship.
#[global_allocator]
static ALLOC: viderec_prof::CountingAlloc = viderec_prof::CountingAlloc::system();

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Exact quantile over sorted client-side latencies (nearest-rank).
fn quantile_micros(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Reads one sample value from a Prometheus exposition page. `name` is the
/// full sample name including any label set; the match requires the exact
/// name followed by a single space, so `..._sum` never matches a longer
/// sample that merely starts with it.
fn sample(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|l| {
            l.strip_prefix(name)?
                .strip_prefix(' ')?
                .trim()
                .parse::<f64>()
                .ok()
        })
        .unwrap_or(0.0) as u64
}

/// One row of the server-side stage breakdown, pooled over every traced
/// request of the run.
struct StageRow {
    label: &'static str,
    sum_micros: u64,
    count: u64,
}

/// Aggregate of the prune counters over the trace ring's most recent entries
/// (`GET /debug/queries`), which cover the tail of the last strategy run.
#[derive(Default)]
struct TraceSummary {
    traces: u64,
    scanned: u64,
    pruned: u64,
    exact_evals: u64,
    total_micros: u64,
    stage_sum_micros: u64,
}

fn summarize_traces(debug_page: &str) -> TraceSummary {
    let mut agg = TraceSummary::default();
    // Each trace object in the "recent" array starts with its hex id; the
    // page was requested with slow=0 so every segment is a distinct trace.
    for seg in debug_page.split("{\"trace\":\"").skip(1) {
        agg.traces += 1;
        agg.scanned += json_u64(seg, "scanned").unwrap_or(0);
        agg.pruned += json_u64(seg, "pruned").unwrap_or(0);
        agg.exact_evals += json_u64(seg, "exact_evals").unwrap_or(0);
        agg.total_micros += json_u64(seg, "total_micros").unwrap_or(0);
        agg.stage_sum_micros += json_u64(seg, "stage_sum_micros").unwrap_or(0);
    }
    agg
}

/// Minimal JSON string escaping for symbol names embedded in the report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// What `GET /debug/profile` said about the server under load, plus the
/// process telemetry sampled right after the capture window closed.
struct ProfileCapture {
    seconds: u64,
    hz: u64,
    samples: u64,
    dropped: u64,
    window_ms: u64,
    emd_kernel_share: f64,
    top: Vec<(u64, String)>,
    rss_bytes: u64,
    utime_secs: f64,
    stime_secs: f64,
    threads: u64,
}

/// Mid-run CPU profile: closed-loop clients keep the headline strategy hot
/// while one more client asks the server to profile itself over HTTP.
/// ITIMER_PROF fires on consumed CPU time only, so admission-queue wait —
/// wall time a request spends parked before a worker picks it up — never
/// appears in these stacks; compare `mean_queue_wait_micros` in the stage
/// breakdown against the on-CPU shares here to separate the two.
fn profile_under_load(
    addr: std::net::SocketAddr,
    queries: &[u64],
    clients: usize,
    seconds: u64,
    k: usize,
) -> Option<ProfileCapture> {
    let stop = AtomicBool::new(false);
    let body = std::thread::scope(|s| {
        for c in 0..clients {
            let stop = &stop;
            s.spawn(move || {
                let mut i = c;
                while !stop.load(Ordering::Relaxed) {
                    let video = queries[i % queries.len()];
                    i += 1;
                    let _ = get(
                        addr,
                        &format!("/recommend?video={video}&k={k}&strategy=csf-sar-h"),
                        Duration::from_secs(10),
                    );
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300)); // let the load ramp up
        let resp = get(
            addr,
            &format!("/debug/profile?seconds={seconds}&hz=199"),
            Duration::from_secs(seconds + 30),
        );
        stop.store(true, Ordering::Relaxed);
        resp.ok().filter(|r| r.status == 200).map(|r| r.body)
    })?;

    // Header line: `# samples=N dropped=D hz=H window_ms=W`, then one folded
    // stack per line (`frame;frame;... count`), already sorted by count.
    let mut samples = 0u64;
    let mut dropped = 0u64;
    let mut hz = 0u64;
    let mut window_ms = 0u64;
    if let Some(header) = body.lines().next().and_then(|l| l.strip_prefix("# ")) {
        for field in header.split_whitespace() {
            if let Some((key, value)) = field.split_once('=') {
                let v = value.parse().unwrap_or(0);
                match key {
                    "samples" => samples = v,
                    "dropped" => dropped = v,
                    "hz" => hz = v,
                    "window_ms" => window_ms = v,
                    _ => {}
                }
            }
        }
    }
    let mut total = 0u64;
    let mut kernel = 0u64;
    let mut stacks: Vec<(u64, String)> = Vec::new();
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let Some((stack, count)) = line.rsplit_once(' ') else {
            continue;
        };
        let count: u64 = count.parse().unwrap_or(0);
        total += count;
        if stack.contains("emd_1d_soa_capped") {
            kernel += count;
        }
        stacks.push((count, stack.to_string()));
    }
    stacks.sort_by_key(|s| std::cmp::Reverse(s.0));
    stacks.truncate(10);
    let proc = viderec_prof::read_self();
    Some(ProfileCapture {
        seconds,
        hz,
        samples,
        dropped,
        window_ms,
        emd_kernel_share: kernel as f64 / total.max(1) as f64,
        top: stacks,
        rss_bytes: proc.rss_bytes,
        utime_secs: proc.utime_secs,
        stime_secs: proc.stime_secs,
        threads: proc.threads,
    })
}

struct StrategyRun {
    strategy: &'static str,
    requests: u64,
    errors: u64,
    throughput_rps: f64,
    p50_micros: u64,
    p95_micros: u64,
    p99_micros: u64,
    mean_micros: u64,
    max_micros: u64,
}

fn run_strategy(
    addr: std::net::SocketAddr,
    strategy: &'static str,
    queries: &[u64],
    clients: usize,
    seconds: u64,
    k: usize,
) -> StrategyRun {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(4096);
                    let mut errors = 0u64;
                    let mut i = c; // stagger the query rotation per client
                    while !stop.load(Ordering::Relaxed) {
                        let video = queries[i % queries.len()];
                        i += 1;
                        let t0 = Instant::now();
                        let ok = get(
                            addr,
                            &format!("/recommend?video={video}&k={k}&strategy={strategy}"),
                            Duration::from_secs(10),
                        )
                        .map(|r| r.status == 200)
                        .unwrap_or(false);
                        let micros = t0.elapsed().as_micros() as u64;
                        if ok {
                            lats.push(micros);
                        } else {
                            errors += 1;
                        }
                    }
                    (lats, errors)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
        let mut all = Vec::new();
        let mut errors = 0u64;
        for h in handles {
            let (lats, errs) = h.join().expect("client thread");
            all.extend(lats);
            errors += errs;
        }
        all.push(errors); // smuggle the error count through the scope
        all
    });
    let errors = latencies.pop().unwrap_or(0);
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    StrategyRun {
        strategy,
        requests,
        errors,
        throughput_rps: requests as f64 / elapsed,
        p50_micros: quantile_micros(&latencies, 0.50),
        p95_micros: quantile_micros(&latencies, 0.95),
        p99_micros: quantile_micros(&latencies, 0.99),
        mean_micros: latencies
            .iter()
            .sum::<u64>()
            .checked_div(requests)
            .unwrap_or(0),
        max_micros: latencies.last().copied().unwrap_or(0),
    }
}

struct UpdateRun {
    mode: &'static str,
    requests: u64,
    errors: u64,
    backpressure_503: u64,
    throughput_rps: f64,
    p50_micros: u64,
    p99_micros: u64,
    mean_micros: u64,
    wal_records: u64,
    wal_fsyncs: u64,
}

/// Closed-loop `POST /update` drivers against `addr` for `seconds`; each
/// body is one comment event, rotated per client.
fn run_updates(
    addr: std::net::SocketAddr,
    mode: &'static str,
    bodies: &[String],
    clients: usize,
    seconds: u64,
) -> UpdateRun {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let (mut latencies, errors, backpressure_503) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut lats: Vec<u64> = Vec::with_capacity(4096);
                    let mut errors = 0u64;
                    let mut backpressure = 0u64;
                    let mut i = c;
                    while !stop.load(Ordering::Relaxed) {
                        let body = &bodies[i % bodies.len()];
                        i += 1;
                        let t0 = Instant::now();
                        let status = post(addr, "/update", body, Duration::from_secs(30))
                            .map(|r| r.status)
                            .unwrap_or(0);
                        let micros = t0.elapsed().as_micros() as u64;
                        if status == 202 {
                            lats.push(micros);
                        } else if status == 503 {
                            // Enqueue-only acks fill the bounded queue long
                            // before the maintainer drains it; back off rather
                            // than counting a full queue as a failure.
                            backpressure += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        } else {
                            errors += 1;
                        }
                    }
                    (lats, errors, backpressure)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
        let mut all = Vec::new();
        let mut errors = 0u64;
        let mut backpressure = 0u64;
        for h in handles {
            let (lats, errs, bp) = h.join().expect("update client thread");
            all.extend(lats);
            errors += errs;
            backpressure += bp;
        }
        (all, errors, backpressure)
    });
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let page = get(addr, "/metrics", Duration::from_secs(10))
        .expect("scrape /metrics")
        .body;
    UpdateRun {
        mode,
        requests,
        errors,
        backpressure_503,
        throughput_rps: requests as f64 / elapsed,
        p50_micros: quantile_micros(&latencies, 0.50),
        p99_micros: quantile_micros(&latencies, 0.99),
        mean_micros: latencies
            .iter()
            .sum::<u64>()
            .checked_div(requests)
            .unwrap_or(0),
        wal_records: sample(&page, "serve_wal_records_appended_total"),
        wal_fsyncs: sample(&page, "serve_wal_fsyncs_total"),
    }
}

fn main() {
    let seconds: u64 = env_or("SERVE_LOAD_SECONDS", 10);
    let clients: usize = env_or("SERVE_LOAD_CLIENTS", 4);
    let hours: f64 = env_or("SERVE_LOAD_HOURS", 10.0);
    let k: usize = env_or("SERVE_LOAD_K", 10);
    let out_path = std::env::var("SERVE_LOAD_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());

    eprintln!("generating community ({hours} paper-hours)…");
    let community = Community::generate(CommunityConfig {
        hours,
        seed: viderec_bench::scale::SEED,
        ..Default::default()
    });
    eprintln!("building recommender…");
    let recommender = Recommender::build(RecommenderConfig::default(), community.source_corpus())
        .expect("valid corpus");
    let (videos, users) = (recommender.num_videos(), recommender.num_users());
    let queries: Vec<u64> = community.query_videos().iter().map(|v| v.0).collect();

    let handle = start(ServeConfig::default(), recommender).expect("server starts");
    let addr = handle.addr();
    eprintln!("serving on {addr}; {clients} closed-loop clients x {seconds}s per strategy, k={k}");

    let mut runs = Vec::new();
    for strategy in ["csf-sar-h", "csf", "cr"] {
        eprintln!("measuring {strategy}…");
        let run = run_strategy(addr, strategy, &queries, clients, seconds, k);
        eprintln!(
            "  {:.1} req/s, p50 {} µs, p95 {} µs, p99 {} µs ({} errors)",
            run.throughput_rps, run.p50_micros, run.p95_micros, run.p99_micros, run.errors
        );
        runs.push(run);
    }

    // Profile the server mid-run: clients keep the headline strategy hot
    // while `/debug/profile` walks the worker stacks from a SIGPROF handler.
    let profile_seconds: u64 = env_or("SERVE_LOAD_PROFILE_SECONDS", 5);
    eprintln!("profiling {profile_seconds}s under csf-sar-h load…");
    let profile = profile_under_load(addr, &queries, clients, profile_seconds, k);
    match &profile {
        Some(p) => eprintln!(
            "  {} samples @ {} Hz; emd_1d_soa_capped in {:.1}% of on-CPU samples; \
             rss {} MiB, cpu {:.1}s user + {:.1}s sys",
            p.samples,
            p.hz,
            100.0 * p.emd_kernel_share,
            p.rss_bytes >> 20,
            p.utime_secs,
            p.stime_secs
        ),
        None => eprintln!("  profile capture unavailable on this platform"),
    }

    // Scrape the server's own view before shutting down: per-stage time from
    // /metrics (pooled over every traced request of the whole run) and the
    // prune counters from the trace ring's most recent entries.
    let metrics_page = get(addr, "/metrics", Duration::from_secs(10))
        .expect("scrape /metrics")
        .body;
    let stages: Vec<StageRow> = Stage::ALL
        .iter()
        .map(|s| {
            let label = s.label();
            StageRow {
                label,
                sum_micros: sample(
                    &metrics_page,
                    &format!("serve_query_stage_micros_sum{{stage=\"{label}\"}}"),
                ),
                count: sample(
                    &metrics_page,
                    &format!("serve_query_stage_micros_count{{stage=\"{label}\"}}"),
                ),
            }
        })
        .collect();
    let stage_total: u64 = stages.iter().map(|s| s.sum_micros).sum();
    let share = |sum: u64| sum as f64 / stage_total.max(1) as f64;
    let queue = &stages[Stage::Queue.index()];
    let emd_share = share(stages[Stage::Emd.index()].sum_micros);
    let mean_queue_wait = queue.sum_micros.checked_div(queue.count).unwrap_or(0);
    let traces = summarize_traces(
        &get(addr, "/debug/queries?n=64&slow=0", Duration::from_secs(10))
            .expect("scrape /debug/queries")
            .body,
    );
    let prune_rate = traces.pruned as f64 / traces.scanned.max(1) as f64;
    eprintln!(
        "stage breakdown: emd {:.1}% of stage time, mean queue wait {} µs, \
         prune rate {:.1}% over {} ring traces",
        100.0 * emd_share,
        mean_queue_wait,
        100.0 * prune_rate,
        traces.traces
    );

    let m = handle.metrics();
    let submitted = m.submitted.load(Ordering::SeqCst);
    let served = m.served.load(Ordering::SeqCst);
    let rejected = m.rejected.load(Ordering::SeqCst);
    let expired = m.deadline_expired.load(Ordering::SeqCst);
    assert_eq!(
        submitted,
        served + rejected + expired,
        "accounting identity violated"
    );
    handle.shutdown();

    // --- Durability tax: update throughput per fsync policy. ---
    let update_seconds: u64 = env_or("SERVE_LOAD_UPDATE_SECONDS", 5);
    let wal_dir: String =
        std::env::var("SERVE_LOAD_WAL_DIR").unwrap_or_else(|_| "wal-scratch".into());
    let update_bodies: Vec<String> = (0..1024)
        .map(|i| {
            encode_comment(
                community.videos[i % community.videos.len()].id,
                &community.comments[(i * 7) % community.comments.len()].user,
            )
        })
        .collect();
    let update_clients = clients.min(2); // the maintainer serializes applies anyway
    let modes: [(&'static str, Option<FsyncPolicy>); 3] = [
        ("wal-off", None),
        ("fsync-batch", Some(FsyncPolicy::Batch)),
        (
            "fsync-interval-25ms",
            Some(FsyncPolicy::Interval(Duration::from_millis(25))),
        ),
    ];
    let mut update_runs = Vec::new();
    for (mode, fsync) in modes {
        eprintln!("measuring update path: {mode}…");
        let handle = match fsync {
            None => {
                let r = Recommender::build(RecommenderConfig::default(), community.source_corpus())
                    .expect("valid corpus");
                start(ServeConfig::default(), r).expect("server starts")
            }
            Some(policy) => {
                let dir = std::path::Path::new(&wal_dir).join(mode);
                // viderec-lint: allow(durable-writes) — scratch data dir for the
                // WAL-mode measurement, recreated fresh every run.
                let _ = std::fs::remove_dir_all(&dir);
                // viderec-lint: allow(durable-writes) — same scratch dir.
                std::fs::create_dir_all(&dir).expect("scratch dir");
                let mut dur = DurabilityConfig::new(&dir);
                dur.fsync = policy;
                start_durable(
                    ServeConfig::default(),
                    dur,
                    RecommenderConfig::default(),
                    community.source_corpus(),
                )
                .expect("durable server starts")
                .0
            }
        };
        let run = run_updates(
            handle.addr(),
            mode,
            &update_bodies,
            update_clients,
            update_seconds,
        );
        eprintln!(
            "  {:.1} acks/s, p50 {} µs, p99 {} µs ({} errors, {} backpressure, {} wal records, {} fsyncs)",
            run.throughput_rps,
            run.p50_micros,
            run.p99_micros,
            run.errors,
            run.backpressure_503,
            run.wal_records,
            run.wal_fsyncs
        );
        update_runs.push(run);
        handle.shutdown();
        if fsync.is_some() {
            // viderec-lint: allow(durable-writes) — cleanup of the scratch
            // data dir created above.
            let _ = std::fs::remove_dir_all(std::path::Path::new(&wal_dir).join(mode));
        }
    }
    // viderec-lint: allow(durable-writes) — removes the (now empty) scratch
    // root left behind by the WAL-mode measurements.
    let _ = std::fs::remove_dir(&wal_dir);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve_load\",\n");
    json.push_str(
        "  \"description\": \"Closed-loop HTTP load against the serving subsystem \
         (in-process server, epoch-swapped snapshots). Client-observed latency per \
         GET /recommend over a real TCP socket, one request per connection.\",\n",
    );
    json.push_str("  \"command\": \"cargo run --release -p viderec-bench --bin serve_load\",\n");
    json.push_str(&format!(
        "  \"setup\": {{ \"community_hours\": {hours}, \"corpus_videos\": {videos}, \
         \"users\": {users}, \"query_rotation\": {}, \"top_k\": {k}, \
         \"clients\": {clients}, \"seconds_per_strategy\": {seconds}, \
         \"workers\": \"max(2, available_parallelism)\" }},\n",
        queries.len()
    ));
    json.push_str(&format!(
        "  \"server_accounting\": {{ \"submitted\": {submitted}, \"served\": {served}, \
         \"rejected\": {rejected}, \"deadline_expired\": {expired} }},\n"
    ));
    json.push_str(
        "  \"stage_breakdown\": {\n    \"source\": \"GET /metrics serve_query_stage_micros, \
         pooled over every traced request of the run\",\n    \"stages\": [\n",
    );
    for (i, s) in stages.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"stage\": \"{}\", \"sum_micros\": {}, \"count\": {}, \
             \"share\": {:.4} }}{}\n",
            s.label,
            s.sum_micros,
            s.count,
            share(s.sum_micros),
            if i + 1 < stages.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"emd_time_share\": {:.4},\n    \"mean_queue_wait_micros\": {}\n  }},\n",
        emd_share, mean_queue_wait
    ));
    json.push_str(&format!(
        "  \"trace_summary\": {{ \"source\": \"GET /debug/queries?n=64 (most recent ring \
         traces; tail of the last strategy measured)\", \"traces\": {}, \"scanned\": {}, \
         \"pruned\": {}, \"exact_evals\": {}, \"prune_rate\": {:.4}, \
         \"mean_total_micros\": {}, \"mean_stage_sum_micros\": {} }},\n",
        traces.traces,
        traces.scanned,
        traces.pruned,
        traces.exact_evals,
        prune_rate,
        traces.total_micros.checked_div(traces.traces).unwrap_or(0),
        traces
            .stage_sum_micros
            .checked_div(traces.traces)
            .unwrap_or(0),
    ));
    json.push_str(&format!(
        "  \"durability_tax\": {{\n    \"description\": \"Closed-loop POST /update per fsync \
         policy: the WAL's price on the update path. Durable modes acknowledge only after \
         the event is framed, CRC'd and (per policy) fsynced; wal-off acks on enqueue, so \
         its latencies exclude the apply entirely and queue overflow comes back as 503 \
         backpressure (counted separately, retried after 1ms). Throughput is apply-bound \
         in every mode on this corpus — the tax shows in ack latency, not acks/s.\",\n    \
         \"update_clients\": {update_clients}, \"seconds_per_mode\": {update_seconds},\n    \
         \"modes\": [\n"
    ));
    for (i, r) in update_runs.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"mode\": \"{}\", \"requests\": {}, \"errors\": {}, \
             \"backpressure_503\": {}, \
             \"throughput_rps\": {:.2}, \"p50_micros\": {}, \"p99_micros\": {}, \
             \"mean_micros\": {}, \"wal_records\": {}, \"wal_fsyncs\": {} }}{}\n",
            r.mode,
            r.requests,
            r.errors,
            r.backpressure_503,
            r.throughput_rps,
            r.p50_micros,
            r.p99_micros,
            r.mean_micros,
            r.wal_records,
            r.wal_fsyncs,
            if i + 1 < update_runs.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    match &profile {
        Some(p) => {
            json.push_str(&format!(
                "  \"profile\": {{\n    \"source\": \"GET /debug/profile?seconds={}&hz=199 \
                 captured mid-run while {} closed-loop clients drove csf-sar-h. ITIMER_PROF \
                 samples consumed CPU time only, so admission-queue wait (wall time; see \
                 stage_breakdown.mean_queue_wait_micros) never appears in these stacks — \
                 the stacks are the on-CPU serve work.\",\n    \"hz\": {}, \"window_ms\": {}, \
                 \"samples\": {}, \"dropped\": {},\n    \"emd_kernel_sample_share\": {:.4},\n    \
                 \"process\": {{ \"rss_bytes\": {}, \"cpu_user_secs\": {:.3}, \
                 \"cpu_system_secs\": {:.3}, \"threads\": {} }},\n    \"top_stacks\": [\n",
                p.seconds,
                clients,
                p.hz,
                p.window_ms,
                p.samples,
                p.dropped,
                p.emd_kernel_share,
                p.rss_bytes,
                p.utime_secs,
                p.stime_secs,
                p.threads
            ));
            for (i, (count, stack)) in p.top.iter().enumerate() {
                json.push_str(&format!(
                    "      {{ \"count\": {}, \"stack\": \"{}\" }}{}\n",
                    count,
                    json_escape(stack),
                    if i + 1 < p.top.len() { "," } else { "" }
                ));
            }
            json.push_str("    ]\n  },\n");
        }
        None => json.push_str("  \"profile\": null,\n"),
    }
    json.push_str("  \"results\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"strategy\": \"{}\", \"requests\": {}, \"errors\": {}, \
             \"throughput_rps\": {:.2}, \"p50_micros\": {}, \"p95_micros\": {}, \
             \"p99_micros\": {}, \"mean_micros\": {}, \"max_micros\": {} }}{}\n",
            r.strategy,
            r.requests,
            r.errors,
            r.throughput_rps,
            r.p50_micros,
            r.p95_micros,
            r.p99_micros,
            r.mean_micros,
            r.max_micros,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    // viderec-lint: allow(durable-writes) — benchmark report artifact, not
    // durable serving state; loss on crash only means re-running the bench.
    std::fs::write(&out_path, &json).expect("write output");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
