//! Fig. 11: effectiveness while 1–4 months of social updates are applied
//! with Fig. 5 maintenance (paper: remains steady).
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::update_effect;
use viderec_eval::report::effectiveness_table;

fn main() {
    let community = Community::generate(scale::effectiveness_config());
    let rows: Vec<(String, _)> = update_effect(&community, scale::SEED)
        .into_iter()
        .map(|(months, m)| {
            let label = if months == 0 {
                "baseline".to_string()
            } else {
                format!("+{months} mo")
            };
            (label, m)
        })
        .collect();
    print!(
        "{}",
        effectiveness_table("Fig. 11: effect of social updates", &rows)
    );
}
