//! Scratch calibration tool: prints the latent-structure separations the
//! experiments depend on (not part of the reproduction deliverables).
use viderec_eval::community::{Community, CommunityConfig};
use viderec_eval::experiment;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let hours: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2.5);
    let mut cfg = if hours <= 3.0 {
        CommunityConfig::tiny(7)
    } else {
        CommunityConfig::default()
    };
    cfg.hours = hours;
    let c = Community::generate(cfg.clone());
    println!(
        "videos={} users={} comments={}",
        c.videos.len(),
        cfg.users,
        c.comments.len()
    );

    // kappa_j separation by relation
    let mut sums = [0.0f64; 4];
    let mut cnts = [0usize; 4];
    let n = c.videos.len().min(40);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let rel = c.relevance(c.videos[i].id, c.videos[j].id);
            let cls = if rel > 0.8 {
                0
            } else if rel > 0.6 {
                1
            } else if rel > 0.4 {
                2
            } else {
                3
            };
            sums[cls] += c.videos[i].series.kappa_j(&c.videos[j].series);
            cnts[cls] += 1;
        }
    }
    for (lbl, k) in ["story", "theme", "topic", "none"].iter().zip(0..4) {
        println!(
            "kappa[{}] = {:.4} (n={})",
            lbl,
            sums[k] / cnts[k].max(1) as f64,
            cnts[k]
        );
    }

    // social jaccard separation by relation (descriptors from full window)
    let corpus = c.corpus_through(16);
    let mut ssum = [0.0f64; 4];
    let mut scnt = [0usize; 4];
    for i in 0..corpus.len() {
        for j in 0..corpus.len() {
            if i == j {
                continue;
            }
            let rel = c.relevance(corpus[i].id, corpus[j].id);
            let cls = if rel > 0.8 {
                0
            } else if rel > 0.6 {
                1
            } else if rel > 0.4 {
                2
            } else {
                3
            };
            let a = &corpus[i].users;
            let b = &corpus[j].users;
            let inter = a.iter().filter(|u| b.contains(u)).count();
            let uni = a.len() + b.len() - inter;
            if uni > 0 {
                ssum[cls] += inter as f64 / uni as f64;
                scnt[cls] += 1;
            }
        }
    }
    for (lbl, k) in ["story", "theme", "topic", "none"].iter().zip(0..4) {
        println!(
            "sj[{}] = {:.4} (n={})",
            lbl,
            ssum[k] / scnt[k].max(1) as f64,
            scnt[k]
        );
    }

    let k = cfg.true_groups;
    let (ours, spec) = experiment::silhouette_comparison(&c, k, 1);
    println!("silhouette k={k}: ours={ours:.3} spectral={spec:.3}");

    // omega sweep quick
    for row in experiment::omega_sweep(&c, &[0.0, 0.3, 0.5, 0.7, 0.9, 1.0], 1) {
        println!(
            "omega {:.1}: AR5 {:.3} MAP5 {:.3}",
            row.0, row.1.top5.ar, row.1.top5.map
        );
    }
}

#[allow(dead_code)]
fn unused() {}
