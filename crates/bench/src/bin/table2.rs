//! Table 2: the five query topics and the derived source-video workload
//! (two most-commented videos per topic, §5.1).
use viderec_bench::scale;
use viderec_eval::community::{Community, TABLE2_TOPICS};

fn main() {
    let community = Community::generate(scale::effectiveness_config());
    println!("== Table 2: queries collected from the (synthetic) community ==");
    println!("{:<10} {:<16} source videos", "query id", "description");
    let queries = community.query_videos();
    for (t, label) in TABLE2_TOPICS.iter().enumerate() {
        let sources: Vec<String> = queries[2 * t..2 * t + 2]
            .iter()
            .map(|v| v.to_string())
            .collect();
        println!("q{:<9} {:<16} {}", t + 1, label, sources.join(", "));
    }
}
