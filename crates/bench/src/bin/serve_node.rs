//! A killable durable serving node for the crash-recovery e2e test.
//!
//! Boots the deterministic `tiny` community corpus, recovers (or seeds) the
//! durability state under `--data-dir`, starts the durable server, prints a
//! single machine-parseable `READY` line and then parks forever — the test
//! harness talks to it over HTTP and terminates it with SIGKILL to simulate
//! a crash, or lets a clean-exit path drain via `POST /update` + kill.
//!
//! ```text
//! serve_node --data-dir <dir> [--addr 127.0.0.1:0] [--fsync batch|off|interval:<ms>]
//!            [--segment-bytes <n>] [--snapshot-every <events>] [--seed <u64>]
//!            [--workers <n>]
//! ```
//!
//! The `READY` line is `READY addr=<ip:port> videos=<n> recovered_lsn=<n>
//! truncated=<bytes> torn=<0|1>` — everything the harness needs to locate
//! the server and assert on recovery.

use std::io::Write as _;

use viderec_core::RecommenderConfig;
use viderec_eval::community::{Community, CommunityConfig};
use viderec_serve::{start_durable, DurabilityConfig, FsyncPolicy, ServeConfig};

/// The counting allocator the serve binaries ship: per-stage alloc cells in
/// `/debug/trace`, live-heap numbers on `/debug/heap` and `/metrics`.
#[global_allocator]
static ALLOC: viderec_prof::CountingAlloc = viderec_prof::CountingAlloc::system();

fn die(msg: &str) -> ! {
    eprintln!("serve_node: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut data_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::Batch;
    let mut segment_bytes: Option<u64> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut seed = 0xC0FFEEu64;
    let mut workers = 2usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--data-dir" => data_dir = Some(value("--data-dir")),
            "--fsync" => {
                fsync = FsyncPolicy::parse(&value("--fsync")).unwrap_or_else(|e| die(&e));
            }
            "--segment-bytes" => {
                segment_bytes = Some(value("--segment-bytes").parse().unwrap_or_else(|_| {
                    die("--segment-bytes wants an integer");
                }));
            }
            "--snapshot-every" => {
                snapshot_every = Some(value("--snapshot-every").parse().unwrap_or_else(|_| {
                    die("--snapshot-every wants an integer");
                }));
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed wants a u64"));
            }
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers wants an integer"));
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let Some(data_dir) = data_dir else {
        die("--data-dir is required");
    };

    let community = Community::generate(CommunityConfig::tiny(seed));
    let corpus = community.source_corpus();

    let mut dur = DurabilityConfig::new(&data_dir);
    dur.fsync = fsync;
    if let Some(b) = segment_bytes {
        dur.segment_bytes = b;
    }
    if let Some(n) = snapshot_every {
        dur.snapshot_every_events = n;
    }

    let serve_cfg = ServeConfig {
        addr,
        workers,
        ..ServeConfig::default()
    };
    let (handle, report) = start_durable(serve_cfg, dur, RecommenderConfig::default(), corpus)
        .unwrap_or_else(|e| die(&format!("start_durable failed: {e}")));

    println!(
        "READY addr={} videos={} recovered_lsn={} truncated={} torn={}",
        handle.addr(),
        community.videos.len(),
        report.recovered_lsn,
        report.truncated_bytes,
        u8::from(report.torn.is_some()),
    );
    let _ = std::io::stdout().flush();

    // The harness owns this process's lifetime: park until killed.
    loop {
        std::thread::park();
    }
}
