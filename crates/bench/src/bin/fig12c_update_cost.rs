//! Fig. 12c: cost of maintaining 1–4 months of social updates over the fixed
//! source set (paper: hundreds of seconds up to ~1500 s at its scale; the
//! shape — roughly linear growth — is the reproduced claim).
use viderec_bench::scale;
use viderec_eval::community::Community;
use viderec_eval::experiment::update_cost;
use viderec_eval::report::update_cost_table;

fn main() {
    let community = Community::generate(scale::config_at(200.0));
    let rows = update_cost(&community);
    print!(
        "{}",
        update_cost_table("Fig. 12c: social update maintenance cost (200h)", &rows)
    );
}
