//! The headline durability proof: kill-and-restart crash recovery over real
//! processes and sockets.
//!
//! A `serve_node` child serves the deterministic `tiny` community corpus
//! with the WAL on. The harness drives a known event sequence at it, SIGKILLs
//! it mid-stream, restarts it from the same data dir, and asserts the
//! recovered recommender answers **every strategy bit-identically** to an
//! uninterrupted reference that applied the same acknowledged events through
//! the same code path. A final phase appends garbage to the live segment and
//! proves a torn tail is truncated and reported, never fatal.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use viderec_core::{CorpusVideo, Recommender, RecommenderConfig, Strategy};
use viderec_eval::community::{Community, CommunityConfig};
use viderec_serve::client::{get, json_u64, post};
use viderec_serve::wire::{encode_age, encode_comment, encode_ingest, parse_update_body};
use viderec_video::VideoId;

const TIMEOUT: Duration = Duration::from_secs(10);
const SEED: u64 = 0xC0FFEE;

/// Parsed `READY` line from a `serve_node` child.
struct Ready {
    addr: SocketAddr,
    recovered_lsn: u64,
    truncated: u64,
    torn: bool,
}

struct Node {
    child: Child,
    ready: Ready,
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_node(data_dir: &Path) -> Node {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve_node"))
        .args([
            "--data-dir",
            data_dir.to_str().expect("utf8 path"),
            "--fsync",
            "batch",
            "--segment-bytes",
            "4096",
            "--snapshot-every",
            "8",
            "--seed",
            &SEED.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve_node");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read READY line");
    let mut addr = None;
    let mut recovered_lsn = None;
    let mut truncated = None;
    let mut torn = None;
    for field in line.trim().split(' ') {
        if let Some((k, v)) = field.split_once('=') {
            match k {
                "addr" => addr = v.parse().ok(),
                "recovered_lsn" => recovered_lsn = v.parse().ok(),
                "truncated" => truncated = v.parse().ok(),
                "torn" => torn = Some(v == "1"),
                _ => {}
            }
        }
    }
    let ready = Ready {
        addr: addr.unwrap_or_else(|| panic!("no addr in READY line: {line:?}")),
        recovered_lsn: recovered_lsn.expect("recovered_lsn in READY"),
        truncated: truncated.expect("truncated in READY"),
        torn: torn.expect("torn in READY"),
    };
    Node { child, ready }
}

/// The deterministic event sequence: one event per body, mixing comments,
/// new-video ingests and aging steps. Body `i` always encodes the same
/// event, so "the first `n` acknowledged events" is a pure function of `n`.
fn event_bodies(community: &Community, n: usize) -> Vec<String> {
    let nv = community.videos.len();
    let nc = community.comments.len();
    (0..n)
        .map(|i| {
            if i % 7 == 6 {
                encode_age(1)
            } else if i % 5 == 3 {
                let donor = &community.videos[i % nv];
                let video = CorpusVideo {
                    id: VideoId(1_000_000 + i as u64),
                    series: donor.series.clone(),
                    users: vec![community.comments[i % nc].user.clone()],
                };
                encode_ingest(&video)
            } else {
                encode_comment(
                    community.videos[i % nv].id,
                    &community.comments[(i * 3) % nc].user,
                )
            }
        })
        .collect()
}

/// The uninterrupted reference: the boot corpus plus the first `n` events of
/// the sequence, applied through the same `apply_event` path the maintainer
/// uses (failures ignored identically).
fn reference_after(community: &Community, bodies: &[String], n: usize) -> Recommender {
    let mut r = Recommender::build(RecommenderConfig::default(), community.source_corpus())
        .expect("reference build");
    for body in &bodies[..n] {
        let events = parse_update_body(body).expect("valid body");
        assert_eq!(events.len(), 1, "one event per body by construction");
        for event in events {
            let _ = r.apply_event(event);
        }
    }
    r
}

fn direct(r: &Recommender, strategy: Strategy, qid: VideoId, k: usize) -> Vec<(u64, u64)> {
    let q = r.query_for(qid).expect("query video indexed");
    r.recommend_excluding(strategy, &q, k, &[qid])
        .into_iter()
        .map(|s| (s.video.0, s.score.to_bits()))
        .collect()
}

/// Pulls `(video, score_bits)` pairs out of a `/recommend` response body.
fn parse_results(body: &str) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(pos) = rest.find("{\"video\":") {
        rest = &rest[pos + "{\"video\":".len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let video: u64 = digits.parse().expect("video id");
        let key = "\"score_bits\":\"";
        let bpos = rest.find(key).expect("score_bits present");
        let hex = &rest[bpos + key.len()..bpos + key.len() + 16];
        out.push((video, u64::from_str_radix(hex, 16).expect("hex bits")));
        rest = &rest[bpos..];
    }
    out
}

/// Every strategy, several queries: the served answers must be bit-identical
/// to the reference.
fn assert_bit_identical(addr: SocketAddr, reference: &Recommender, queries: &[VideoId]) {
    let strategies = [
        ("cr", Strategy::Cr),
        ("sr", Strategy::Sr),
        ("csf", Strategy::Csf),
        ("csf-sar", Strategy::CsfSar),
        ("csf-sar-h", Strategy::CsfSarH),
    ];
    for &(label, strategy) in &strategies {
        for &qid in queries {
            let target = format!("/recommend?video={}&k=5&strategy={label}", qid.0);
            let resp = get(addr, &target, TIMEOUT).expect("request succeeds");
            assert_eq!(resp.status, 200, "{target}: {}", resp.body);
            assert_eq!(
                parse_results(&resp.body),
                direct(reference, strategy, qid, 5),
                "strategy {label}, query {} diverged after recovery",
                qid.0
            );
        }
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn sigkill_mid_stream_recovers_bit_identically_and_tolerates_a_torn_tail() {
    let community = Community::generate(CommunityConfig::tiny(SEED));
    let bodies = event_bodies(&community, 160);
    let dir = scratch_dir("dur_e2e");

    // --- Phase 1: boot fresh, ack a prefix, then SIGKILL mid-stream. ---
    let node = spawn_node(&dir);
    assert_eq!(node.ready.recovered_lsn, 0, "fresh dir starts at LSN 0");
    assert!(!node.ready.torn);
    let addr = node.ready.addr;

    // Acked prefix: sequential single-event batches; fsync=batch means every
    // 202 is durable on disk before the response leaves the server.
    let acked_prefix = 12usize;
    for (i, body) in bodies[..acked_prefix].iter().enumerate() {
        let resp = post(addr, "/update", body, TIMEOUT).expect("update accepted");
        assert_eq!(resp.status, 202, "event {i}: {}", resp.body);
        assert_eq!(
            json_u64(&resp.body, "durable_lsn"),
            Some(i as u64 + 1),
            "LSN must track the acknowledged event count: {}",
            resp.body
        );
    }

    // Mid-stream kill: a background sender keeps acking events one at a time
    // while the main thread pulls the plug. Sends are sequential, so the
    // acknowledged set is always a prefix of `bodies`.
    let (sent_tx, sent_rx) = std::sync::mpsc::channel::<usize>();
    let (node, mut acked) = std::thread::scope(|s| {
        let sender = s.spawn(|| {
            for (i, body) in bodies.iter().enumerate().skip(acked_prefix) {
                match post(addr, "/update", body, TIMEOUT) {
                    Ok(resp) if resp.status == 202 => {
                        let lsn = json_u64(&resp.body, "durable_lsn").expect("durable_lsn");
                        assert_eq!(lsn, i as u64 + 1);
                        let _ = sent_tx.send(i + 1);
                    }
                    // The kill races the in-flight request: any error or
                    // non-202 after the kill is expected; stop sending.
                    _ => return,
                }
            }
        });
        // Let a few dozen more events through, then SIGKILL.
        let mut node = node;
        let mut acked = acked_prefix;
        while let Ok(n) = sent_rx.recv_timeout(TIMEOUT) {
            acked = acked.max(n);
            if n >= 40 {
                break;
            }
        }
        node.child.kill().expect("SIGKILL");
        node.child.wait().expect("reap");
        sender.join().expect("sender thread");
        (node, acked)
    });
    drop(node);
    for n in sent_rx.try_iter() {
        acked = acked.max(n);
    }
    assert!(acked >= 40, "kill happened before enough events: {acked}");

    // --- Phase 2: restart from the data dir; recovery must cover every
    // acknowledged event (durable-but-unacked tail events are also fine). ---
    let node = spawn_node(&dir);
    let recovered = node.ready.recovered_lsn;
    assert!(
        recovered >= acked as u64,
        "recovery lost acknowledged events: acked {acked}, recovered {recovered}"
    );
    assert!(
        recovered <= bodies.len() as u64,
        "recovered more events than were ever sent: {recovered}"
    );

    let reference = reference_after(&community, &bodies, recovered as usize);
    let queries: Vec<VideoId> = community.query_videos().into_iter().take(3).collect();
    assert_bit_identical(node.ready.addr, &reference, &queries);

    // The recovered node keeps accepting durable updates where the log left
    // off.
    let resp = post(node.ready.addr, "/update", &bodies[0], TIMEOUT).expect("post-recovery update");
    assert_eq!(resp.status, 202, "{}", resp.body);
    assert_eq!(json_u64(&resp.body, "durable_lsn"), Some(recovered + 1));
    let reference = reference_after(&community, &bodies, recovered as usize + 1);

    // --- Phase 3: SIGKILL the quiescent node, tear the live segment's tail,
    // and prove recovery truncates instead of dying. ---
    let mut node = node;
    node.child.kill().expect("SIGKILL");
    node.child.wait().expect("reap");
    drop(node);

    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read data dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("wal-") && name.ends_with(".seg")
        })
        .collect();
    segments.sort();
    let live = segments.last().expect("at least one segment");
    let garbage = [0xFFu8; 23]; // an impossible frame header + partial body
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(live)
            .expect("open live segment");
        f.write_all(&garbage).expect("append garbage");
        f.sync_all().expect("sync garbage");
    }

    let node = spawn_node(&dir);
    assert_eq!(
        node.ready.recovered_lsn,
        recovered + 1,
        "torn tail must not change the recovered LSN"
    );
    assert!(node.ready.torn, "torn tail must be reported");
    assert_eq!(
        node.ready.truncated,
        garbage.len() as u64,
        "exactly the garbage bytes must be truncated"
    );
    assert_bit_identical(node.ready.addr, &reference, &queries);

    drop(node);
    let _ = std::fs::remove_dir_all(&dir);
}
