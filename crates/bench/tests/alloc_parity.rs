//! With the counting global allocator installed — the configuration the
//! serve binaries ship — tracing must stay a pure observer: traced and
//! untraced queries return bit-identical results, while the traced path's
//! per-stage `AllocCell`s actually populate. Without a counting allocator
//! those cells read zero by design (see `viderec_trace::alloc`), so this is
//! the only place the "populated when counted" half of the contract can be
//! exercised.

use viderec_core::{QueryVideo, Recommender, RecommenderConfig, Stage, Strategy, Tracer};
use viderec_eval::community::{Community, CommunityConfig};

#[global_allocator]
static ALLOC: viderec_prof::CountingAlloc = viderec_prof::CountingAlloc::system();

fn strategies() -> [Strategy; 3] {
    [Strategy::Csf, Strategy::CsfSar, Strategy::CsfSarH]
}

#[test]
fn tracing_is_a_pure_observer_under_the_counting_allocator() {
    assert!(viderec_prof::counting_installed());

    let community = Community::generate(CommunityConfig::tiny(41));
    let recommender = Recommender::build(RecommenderConfig::default(), community.source_corpus())
        .expect("tiny corpus builds");
    let queries: Vec<QueryVideo> = community
        .source_corpus()
        .iter()
        .take(4)
        .map(QueryVideo::from_corpus)
        .collect();

    for strategy in strategies() {
        for q in &queries {
            let (off, _) = recommender.recommend_traced(strategy, q, 5, &[], Tracer::OFF);
            let (on, trace) = recommender.recommend_traced(strategy, q, 5, &[], Tracer::ON);

            assert_eq!(off.len(), on.len(), "{}", strategy.label());
            for (a, b) in off.iter().zip(&on) {
                assert_eq!(a.video, b.video, "{}", strategy.label());
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "traced and untraced scores must be bit-identical ({})",
                    strategy.label()
                );
            }

            // The counting allocator is live, so a traced query's stage
            // cells must carry real deltas somewhere: every strategy at
            // least sorts its candidates into a fresh top-k vector.
            let total: u64 = Stage::ALL.iter().map(|s| trace.alloc(*s).bytes).sum();
            assert!(
                total > 0,
                "traced query recorded no allocations under the counting \
                 allocator ({})",
                strategy.label()
            );
        }
    }
}

#[test]
fn untraced_queries_record_no_alloc_cells() {
    let community = Community::generate(CommunityConfig::tiny(43));
    let recommender = Recommender::build(RecommenderConfig::default(), community.source_corpus())
        .expect("tiny corpus builds");
    let q = QueryVideo::from_corpus(&community.source_corpus()[0]);

    let (_, trace) = recommender.recommend_traced(Strategy::CsfSarH, &q, 5, &[], Tracer::OFF);
    for stage in Stage::ALL {
        assert_eq!(
            trace.alloc(stage),
            viderec_trace::AllocCell::default(),
            "Tracer::OFF must not touch the alloc cells"
        );
    }
}
