//! Index substrate benchmarks: shift-add-xor hashing, the chained hash table
//! vs std::HashMap, B⁺-tree inserts/lookups, Z-order codes and LSB queries.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viderec_index::{
    zorder_encode, BPlusTree, CauchyLsh, ChainedHashTable, LsbConfig, LsbForest, ShiftAddXor,
};

fn bench_hashing(c: &mut Criterion) {
    let h = ShiftAddXor::default();
    let names: Vec<String> = (0..1000).map(|i| format!("user_{i:05}")).collect();
    c.bench_function("shift_add_xor_1000_names", |bench| {
        bench.iter(|| names.iter().map(|n| h.hash(n, 4096)).sum::<usize>())
    });

    let mut chained: ChainedHashTable<usize> = ChainedHashTable::new(4096);
    let mut std_map = std::collections::HashMap::new();
    for (i, n) in names.iter().enumerate() {
        chained.insert(n, i);
        std_map.insert(n.clone(), i);
    }
    c.bench_function("chained_get_1000", |bench| {
        bench.iter(|| names.iter().filter_map(|n| chained.get(n)).sum::<usize>())
    });
    c.bench_function("std_hashmap_get_1000", |bench| {
        bench.iter(|| names.iter().filter_map(|n| std_map.get(n)).sum::<usize>())
    });
}

fn bench_btree(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let keys: Vec<u128> = (0..10_000).map(|_| rng.gen()).collect();
    c.bench_function("bptree_insert_10k", |bench| {
        bench.iter(|| {
            let mut t = BPlusTree::new();
            for &k in &keys {
                t.insert(k, ());
            }
            t.len()
        })
    });
    let mut t = BPlusTree::new();
    for &k in &keys {
        t.insert(k, ());
    }
    c.bench_function("bptree_get_10k", |bench| {
        bench.iter(|| keys.iter().filter(|&&k| t.get(k).is_some()).count())
    });
}

fn bench_zorder_and_lsb(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let coords: Vec<u64> = (0..8).map(|_| rng.gen_range(0..1u64 << 12)).collect();
    c.bench_function("zorder_encode_8x12", |bench| {
        bench.iter(|| zorder_encode(&coords, 12))
    });

    let lsh = CauchyLsh::new(8, 32, 4.0, 10);
    let point: Vec<f64> = (0..32).map(|_| rng.gen_range(-10.0..10.0)).collect();
    c.bench_function("cauchy_lsh_hash_32d", |bench| {
        bench.iter(|| lsh.hash(&point))
    });

    let mut forest: LsbForest<u32> = LsbForest::new(LsbConfig::default(), 32);
    for i in 0..2000 {
        let p: Vec<f64> = (0..32).map(|_| rng.gen_range(-10.0..10.0)).collect();
        forest.insert(&p, i);
    }
    c.bench_function("lsb_query_2k_corpus", |bench| {
        bench.iter(|| forest.query(&point, 64).len())
    });
}

criterion_group!(benches, bench_hashing, bench_btree, bench_zorder_and_lsb);
criterion_main!(benches);
