//! EMD solver ablation (DESIGN.md): the 1-D closed form vs the
//! transportation simplex vs successive shortest paths, plus the κJ matching
//! variants and the CDF embedding.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viderec_emd::emd::Emd;
use viderec_emd::{extended_jaccard, extended_jaccard_all_pairs, CdfEmbedder, MatchingConfig};

fn random_sig(rng: &mut StdRng, n: usize) -> Vec<(f64, f64)> {
    let mut ws: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
    let t: f64 = ws.iter().sum();
    ws.iter_mut().for_each(|w| *w /= t);
    ws.into_iter()
        .map(|w| (rng.gen_range(-50.0..50.0), w))
        .collect()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_solvers");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[4usize, 8, 16] {
        let a = random_sig(&mut rng, n);
        let b = random_sig(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("one_dimensional", n), &n, |bench, _| {
            bench.iter(|| Emd::OneDimensional.distance(&a, &b).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("simplex", n), &n, |bench, _| {
            bench.iter(|| Emd::Simplex.distance(&a, &b).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("shortest_paths", n), &n, |bench, _| {
            bench.iter(|| Emd::ShortestPaths.distance(&a, &b).unwrap())
        });
    }
    group.finish();
}

fn bench_kappa_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("kappa_j");
    let mut rng = StdRng::seed_from_u64(2);
    let n = 30usize;
    let sims: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    group.bench_function("greedy_matching", |bench| {
        bench.iter(|| extended_jaccard(n, n, |i, j| sims[i][j], MatchingConfig::default()))
    });
    group.bench_function("all_pairs_literal", |bench| {
        bench.iter(|| extended_jaccard_all_pairs(n, n, |i, j| sims[i][j]))
    });
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let sig = random_sig(&mut rng, 12);
    let embedder = CdfEmbedder::for_intensity_deltas(32);
    c.bench_function("cdf_embed_32d", |bench| bench.iter(|| embedder.embed(&sig)));
}

fn bench_kappa_pruning(c: &mut Criterion) {
    // The centroid-LB filter ablation: exact κJ vs the pruned hot path on
    // real signature series from the synthetic pipeline.
    use viderec_signature::{kappa_j_series, kappa_j_series_pruned, SignatureBuilder};
    use viderec_video::{SynthConfig, VideoId, VideoSynthesizer};
    let mut synth = VideoSynthesizer::new(SynthConfig::default(), 5, 77);
    let b = SignatureBuilder::default();
    let s1 = b.build(&synth.generate(VideoId(1), 1, 25.0));
    let s2 = b.build(&synth.generate(VideoId(2), 4, 25.0));
    let cfg = MatchingConfig::default();
    let mut group = c.benchmark_group("kappa_pruning");
    group.bench_function("exact", |bench| {
        bench.iter(|| kappa_j_series(&s1, &s2, cfg))
    });
    group.bench_function("centroid_pruned", |bench| {
        bench.iter(|| kappa_j_series_pruned(&s1, &s2, cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_kappa_variants,
    bench_embedding,
    bench_kappa_pruning
);
criterion_main!(benches);
