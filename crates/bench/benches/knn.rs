//! End-to-end KNN ablation (DESIGN.md): exact full-scan CSF vs the indexed
//! CSF-SAR-H path of Fig. 6, on a small community.
use criterion::{criterion_group, criterion_main, Criterion};
use viderec_core::{QueryVideo, Recommender, RecommenderConfig, Strategy};
use viderec_eval::community::{Community, CommunityConfig};

fn bench_knn(c: &mut Criterion) {
    let community = Community::generate(CommunityConfig {
        hours: 10.0,
        ..Default::default()
    });
    let recommender =
        Recommender::build(RecommenderConfig::default(), community.source_corpus()).unwrap();
    let clicked = community.query_videos()[0];
    let query = QueryVideo {
        series: recommender.series_of(clicked).unwrap().clone(),
        users: recommender.users_of(clicked).unwrap().to_vec(),
    };

    let mut group = c.benchmark_group("recommend_10h");
    group.sample_size(10);
    for strategy in [
        Strategy::Csf,
        Strategy::CsfSar,
        Strategy::CsfSarH,
        Strategy::Cr,
    ] {
        group.bench_function(strategy.label(), |bench| {
            bench.iter(|| recommender.recommend_excluding(strategy, &query, 20, &[clicked]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);
