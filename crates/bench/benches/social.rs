//! Social substrate benchmarks: exact sJ vs SAR, extraction (literal vs
//! fast) vs spectral, and the maintenance batch path.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viderec_social::{
    extract_subcommunities, extract_subcommunities_literal, sar_similarity, social_jaccard,
    spectral_clustering, SocialDescriptor, SocialUpdatesMaintenance, UserId, UserInterestGraph,
};

fn random_graph(users: usize, edges: usize, seed: u64) -> UserInterestGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = UserInterestGraph::new(users);
    for _ in 0..edges {
        let a = rng.gen_range(0..users as u32);
        let b = rng.gen_range(0..users as u32);
        if a != b {
            g.add_edge_weight(UserId(a), UserId(b), rng.gen_range(1..6));
        }
    }
    g
}

fn bench_relevance(c: &mut Criterion) {
    let mut group = c.benchmark_group("social_relevance");
    let mut rng = StdRng::seed_from_u64(4);
    for &n in &[50usize, 200, 800] {
        let a: SocialDescriptor = (0..n).map(|_| UserId(rng.gen_range(0..5000))).collect();
        let b: SocialDescriptor = (0..n).map(|_| UserId(rng.gen_range(0..5000))).collect();
        let va: Vec<u32> = (0..60).map(|_| rng.gen_range(0..10)).collect();
        let vb: Vec<u32> = (0..60).map(|_| rng.gen_range(0..10)).collect();
        group.bench_with_input(BenchmarkId::new("exact_sj", n), &n, |bench, _| {
            bench.iter(|| social_jaccard(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("sar_k60", n), &n, |bench, _| {
            bench.iter(|| sar_similarity(&va, &vb))
        });
    }
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("subcommunity_extraction");
    group.sample_size(10);
    let g = random_graph(400, 3000, 5);
    group.bench_function("fast_msf", |bench| {
        bench.iter(|| extract_subcommunities(&g, 40))
    });
    group.bench_function("literal_fig3", |bench| {
        bench.iter(|| extract_subcommunities_literal(&g, 40))
    });
    group.bench_function("spectral_baseline", |bench| {
        bench.iter(|| spectral_clustering(&g, 40, 1))
    });
    group.finish();
}

fn bench_maintenance(c: &mut Criterion) {
    let g = random_graph(400, 3000, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let batch: Vec<(UserId, UserId, u32)> = (0..200)
        .map(|_| {
            let a = rng.gen_range(0..400u32);
            let b = (a + 1 + rng.gen_range(0..398u32)) % 400;
            (UserId(a), UserId(b), rng.gen_range(1..4))
        })
        .collect();
    c.bench_function("maintenance_batch_200", |bench| {
        bench.iter_batched(
            || SocialUpdatesMaintenance::new(g.clone(), 40),
            |mut m| m.apply_connections(&batch),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_relevance,
    bench_extraction,
    bench_maintenance
);
criterion_main!(benches);
