//! EMD kernel smoke bench with hard gates (exit 1 on regression), CI-sized
//! in `--quick` mode (`cargo bench -p viderec-bench --bench emd_kernel --
//! --quick`), mirroring the scale bench's quick-gate pattern.
//!
//! Two gates pin the PR's perf claims so they cannot silently rot:
//!
//! 1. **Kernel**: the flat-lane SoA sweep ([`viderec_emd::emd_1d_soa`]) must
//!    be at least 1.5x the throughput of the pair-slice reference sweep
//!    ([`viderec_emd::emd_1d_presorted`]) on 64-point signatures — the
//!    shape where the branchless merge and lane loads pay for themselves.
//! 2. **Prefilter tier**: a traced pass over a small community must show the
//!    cached-embedding tier actually pruning (`pruned_embed > 0`); a wiring
//!    regression that silently drops tier 2 back to exact evaluation keeps
//!    results correct, so only a counter gate catches it.
//!
//! Both sweeps are bit-identical by construction (pinned by unit tests in
//! `viderec-emd`), so timing is the only thing measured here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use viderec_core::{PruneStats, QueryVideo, Recommender, RecommenderConfig, Strategy, Tracer};
use viderec_emd::{emd_1d_presorted, emd_1d_presorted_capped, emd_1d_soa, emd_1d_soa_capped};
use viderec_eval::community::{Community, CommunityConfig};

/// One presorted signature in both layouts, built from the same draw.
struct Sig {
    pairs: Vec<(f64, f64)>,
    values: Vec<f64>,
    weights: Vec<f64>,
}

fn random_signatures(n_points: usize, count: usize, seed: u64) -> Vec<Sig> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut pairs: Vec<(f64, f64)> = (0..n_points)
                .map(|_| (rng.gen_range(-16.0..16.0), rng.gen_range(0.05..1.0)))
                .collect();
            let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
            for (_, w) in &mut pairs {
                *w /= total;
            }
            pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
            let values = pairs.iter().map(|&(v, _)| v).collect();
            let weights = pairs.iter().map(|&(_, w)| w).collect();
            Sig {
                pairs,
                values,
                weights,
            }
        })
        .collect()
}

/// Best-of-3 wall time for `reps` repetitions of `run`, in seconds, so one
/// scheduler hiccup on a small CI container cannot fail a ratio gate.
fn best_of_3(mut run: impl FnMut() -> f64, reps: usize) -> f64 {
    std::hint::black_box(run()); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += run();
        }
        std::hint::black_box(acc);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Pair-slice vs SoA sweep over every ordered pair of `sigs`; returns
/// `(pair_slice_s, soa_s)`.
fn time_kernels(sigs: &[Sig], reps: usize, cap: Option<f64>) -> (f64, f64) {
    let sweep_pairs = |a: &Sig, b: &Sig| match cap {
        None => emd_1d_presorted(&a.pairs, &b.pairs),
        Some(c) => emd_1d_presorted_capped(&a.pairs, &b.pairs, c),
    };
    let sweep_soa = |a: &Sig, b: &Sig| match cap {
        None => emd_1d_soa(&a.values, &a.weights, &b.values, &b.weights),
        Some(c) => emd_1d_soa_capped(&a.values, &a.weights, &b.values, &b.weights, c),
    };
    let all = |sweep: &dyn Fn(&Sig, &Sig) -> f64| {
        let mut acc = 0.0;
        for a in sigs {
            for b in sigs {
                let d = sweep(a, b);
                if d.is_finite() {
                    acc += d;
                }
            }
        }
        acc
    };
    let pair_s = best_of_3(|| all(&sweep_pairs), reps);
    let soa_s = best_of_3(|| all(&sweep_soa), reps);
    (pair_s, soa_s)
}

/// Traced pass over a community: per-tier prune counters for the default
/// (ceiling-sorted, three-tier) sequential path.
fn tier_counters(hours: f64, queries: usize) -> (PruneStats, usize) {
    let community = Community::generate(CommunityConfig {
        hours,
        ..Default::default()
    });
    let rec = Recommender::build(RecommenderConfig::default(), community.source_corpus())
        .expect("community corpus is valid");
    let mut stats = PruneStats::default();
    for id in community.query_videos().into_iter().take(queries) {
        let q = QueryVideo {
            series: rec.series_of(id).expect("indexed").clone(),
            users: rec.users_of(id).expect("indexed").to_vec(),
        };
        for strategy in [Strategy::CsfSarH, Strategy::Csf] {
            let (_, trace) = rec.recommend_traced(strategy, &q, 20, &[], Tracer::ON);
            stats.absorb(trace.stats);
        }
    }
    (stats, rec.num_videos())
}

fn main() {
    // `cargo bench` appends its own flags (e.g. `--bench`); only `--quick`
    // is ours, everything else is ignored.
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode shrinks the kernel pool and reps but keeps the full-size
    // community: the embedding tier only prunes once the top-k floor is
    // high, and a toy corpus never fills the heap with good-enough scores
    // to give tier 2 anything to cut.
    let (pool, reps, hours, queries) = if quick {
        (48, 40, 10.0, 8)
    } else {
        (96, 120, 10.0, 8)
    };

    println!(
        "== emd-kernel smoke ({} mode) ==",
        if quick { "quick" } else { "full" }
    );
    let mut failures = Vec::new();

    // Gate 1: SoA kernel throughput on 64-point signatures, plus the
    // informational small sizes and the capped variant.
    for n_points in [8usize, 16, 64] {
        let sigs = random_signatures(n_points, pool, 0x5EED_0000 + n_points as u64);
        let (pair_s, soa_s) = time_kernels(&sigs, reps, None);
        let (pair_cap_s, soa_cap_s) = time_kernels(&sigs, reps, Some(2.0));
        let sweeps = (pool * pool * reps) as f64;
        let ratio = pair_s / soa_s;
        println!(
            "{n_points:>3}-point: pair-slice {:>7.1} ns/sweep | soa {:>7.1} ns/sweep | \
             soa speedup {ratio:>5.2}x | capped {:>5.2}x",
            pair_s * 1e9 / sweeps,
            soa_s * 1e9 / sweeps,
            pair_cap_s / soa_cap_s,
        );
        if n_points == 64 && ratio < 1.5 {
            failures.push(format!(
                "SoA sweep only {ratio:.2}x the pair-slice reference on 64-point \
                 signatures (gate: >= 1.5x)"
            ));
        }
    }

    // Gate 2: the cached-embedding tier prunes on a real scan.
    let (stats, corpus) = tier_counters(hours, queries);
    let anchor = stats.pruned - stats.pruned_embed;
    println!(
        "tier counters over {corpus}-video corpus: scanned {} | anchor-pruned {anchor} | \
         embed-pruned {} | exact {} (cap-aborted {} / full {})",
        stats.scanned, stats.pruned_embed, stats.exact_evals, stats.cap_aborted, stats.full_sweeps,
    );
    assert_eq!(
        stats.pruned + stats.exact_evals,
        stats.scanned,
        "prune counters must partition the scanned set"
    );
    if stats.pruned_embed == 0 {
        failures.push(
            "the cached-embedding tier pruned nothing (gate: pruned_embed > 0) — \
             tier 2 is miswired or vacuous"
                .into(),
        );
    }

    if failures.is_empty() {
        println!("emd-kernel smoke: all gates passed");
    } else {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
