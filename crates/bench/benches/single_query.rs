//! Single-query latency: the pruned sequential path (ceiling-sorted scan
//! over the corpus-owned scoring arena, DESIGN.md "Corpus-owned scoring
//! arena") against the naive reference scan that scores every candidate.
//!
//! CSF-SAR-H is the paper's headline online path (candidate retrieval +
//! refinement); CSF is the full-scan contrast where pruning has the whole
//! corpus to cut. Both paths return bit-identical rankings — the equivalence
//! suite (`tests/sequential_prune_equiv.rs`) pins that — so the only
//! difference a click sees is latency, reported here with the prune-rate
//! counters that explain it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use viderec_core::{PruneStats, QueryVideo, Recommender, RecommenderConfig, Strategy};
use viderec_eval::community::{Community, CommunityConfig};

const TOP_K: usize = 20;

fn setup() -> (Recommender, Vec<QueryVideo>) {
    let community = Community::generate(CommunityConfig {
        hours: 10.0,
        ..Default::default()
    });
    let recommender =
        Recommender::build(RecommenderConfig::default(), community.source_corpus()).unwrap();
    let queries: Vec<QueryVideo> = community
        .query_videos()
        .into_iter()
        .take(8)
        .map(|id| QueryVideo {
            series: recommender.series_of(id).unwrap().clone(),
            users: recommender.users_of(id).unwrap().to_vec(),
        })
        .collect();
    (recommender, queries)
}

/// Per-query wall time in seconds: best of three measurement rounds of
/// `reps` repetitions each, so a single scheduler hiccup on a small container
/// cannot distort one configuration's line relative to the others.
fn time_queries(mut run: impl FnMut(), reps: usize, queries: usize) -> f64 {
    run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            run();
        }
        best = best.min(start.elapsed().as_secs_f64() / (reps * queries) as f64);
    }
    best
}

fn report(recommender: &Recommender, queries: &[QueryVideo]) {
    println!("\n== single-query top-{TOP_K}: pruned sequential vs naive scan ==");
    println!(
        "corpus: {} videos, {} users, {} queries, arena bound {:?}",
        recommender.num_videos(),
        recommender.num_users(),
        queries.len(),
        recommender.config().prune_bound,
    );

    let reps = 5;
    for strategy in [Strategy::CsfSarH, Strategy::Csf] {
        let naive = time_queries(
            || {
                for q in queries {
                    std::hint::black_box(recommender.recommend_naive_excluding(
                        strategy,
                        q,
                        TOP_K,
                        &[],
                    ));
                }
            },
            reps,
            queries.len(),
        );
        let pruned = time_queries(
            || {
                for q in queries {
                    std::hint::black_box(recommender.recommend(strategy, q, TOP_K));
                }
            },
            reps,
            queries.len(),
        );
        // Counters from one extra pass (identical work: the scan is
        // deterministic).
        let stats = queries.iter().fold(PruneStats::default(), |mut acc, q| {
            acc.absorb(recommender.recommend_with_stats(strategy, q, TOP_K, &[]).1);
            acc
        });
        println!(
            "{:<9} naive {:>9.3} ms/query | pruned {:>9.3} ms/query | speedup {:>5.2}x | \
             scanned {:>6} pruned {:>6} exact {:>6} prune-rate {:>5.1}%",
            strategy.label(),
            naive * 1e3,
            pruned * 1e3,
            naive / pruned,
            stats.scanned,
            stats.pruned,
            stats.exact_evals,
            100.0 * stats.prune_rate(),
        );
    }
    println!();
}

fn bench_single_query(c: &mut Criterion) {
    let (recommender, queries) = setup();
    report(&recommender, &queries);

    let mut group = c.benchmark_group("single_query_top20");
    group.sample_size(10);
    for strategy in [Strategy::CsfSarH, Strategy::Csf] {
        group.bench_function(format!("{}_naive", strategy.label()), |b| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(recommender.recommend_naive_excluding(
                        strategy,
                        q,
                        TOP_K,
                        &[],
                    ));
                }
            })
        });
        group.bench_function(format!("{}_pruned", strategy.label()), |b| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(recommender.recommend(strategy, q, TOP_K));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_query);
criterion_main!(benches);
