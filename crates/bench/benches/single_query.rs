//! Single-query latency: the pruned sequential path (ceiling-sorted scan
//! over the corpus-owned scoring arena, DESIGN.md "Corpus-owned scoring
//! arena") against the unpruned reference scan that scores every candidate.
//!
//! CSF-SAR-H is the paper's headline online path (candidate retrieval +
//! refinement); CSF is the full-scan contrast where pruning has the whole
//! corpus to cut. Both paths return bit-identical rankings — the equivalence
//! suite (`tests/sequential_prune_equiv.rs`) pins that — so the only
//! difference a click sees is latency, reported here with the prune-rate
//! counters that explain it.
//!
//! Besides the criterion groups, the warm-up report runs one traced pass per
//! strategy (`recommend_traced` with the tracer on) and writes the full
//! result — latency, prune counters, and the per-stage time shares — to
//! `BENCH_single_query.json` (override with `SINGLE_QUERY_OUT`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use viderec_bench::diff::today_utc;
use viderec_core::{
    PruneStats, QueryVideo, Recommender, RecommenderConfig, Stage, Strategy, Tracer, NUM_STAGES,
};
use viderec_eval::community::{Community, CommunityConfig};

const TOP_K: usize = 20;

/// Escapes a symbolized stack for embedding in a JSON string.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Samples the headline pruned path with the in-process CPU profiler: a
/// worker thread loops the queries while `capture` owns the SIGPROF window.
/// Answers the question the wall-clock stage shares cannot: *which
/// functions* own the EMD stage's time.
fn profile_headline(
    recommender: &Recommender,
    queries: &[QueryVideo],
) -> Option<viderec_prof::Profile> {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                for q in queries {
                    std::hint::black_box(recommender.recommend(Strategy::CsfSarH, q, TOP_K));
                }
            }
        });
        let profile = viderec_prof::capture(Duration::from_secs(2), 199);
        stop.store(true, Ordering::Relaxed);
        profile.ok()
    })
}

fn setup() -> (Recommender, Vec<QueryVideo>) {
    let community = Community::generate(CommunityConfig {
        hours: 10.0,
        ..Default::default()
    });
    let recommender =
        Recommender::build(RecommenderConfig::default(), community.source_corpus()).unwrap();
    let queries: Vec<QueryVideo> = community
        .query_videos()
        .into_iter()
        .take(8)
        .map(|id| QueryVideo {
            series: recommender.series_of(id).unwrap().clone(),
            users: recommender.users_of(id).unwrap().to_vec(),
        })
        .collect();
    (recommender, queries)
}

/// Per-query wall time in seconds: best of three measurement rounds of
/// `reps` repetitions each, so a single scheduler hiccup on a small container
/// cannot distort one configuration's line relative to the others.
fn time_queries(mut run: impl FnMut(), reps: usize, queries: usize) -> f64 {
    run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            run();
        }
        best = best.min(start.elapsed().as_secs_f64() / (reps * queries) as f64);
    }
    best
}

struct Row {
    strategy: Strategy,
    naive_s: f64,
    pruned_s: f64,
    stats: PruneStats,
    /// Per-stage nanoseconds summed over one traced pass of every query.
    stage_sums_ns: [u64; NUM_STAGES],
}

fn report(recommender: &Recommender, queries: &[QueryVideo]) {
    println!("\n== single-query top-{TOP_K}: pruned sequential vs naive scan ==");
    println!(
        "corpus: {} videos, {} users, {} queries, arena bound {:?}",
        recommender.num_videos(),
        recommender.num_users(),
        queries.len(),
        recommender.config().prune_bound,
    );

    let reps = 5;
    let mut rows = Vec::new();
    for strategy in [Strategy::CsfSarH, Strategy::Csf] {
        let naive = time_queries(
            || {
                for q in queries {
                    std::hint::black_box(recommender.recommend_unpruned_excluding(
                        strategy,
                        q,
                        TOP_K,
                        &[],
                    ));
                }
            },
            reps,
            queries.len(),
        );
        let pruned = time_queries(
            || {
                for q in queries {
                    std::hint::black_box(recommender.recommend(strategy, q, TOP_K));
                }
            },
            reps,
            queries.len(),
        );
        // Counters and stage times from one traced pass (identical work: the
        // scan is deterministic, and tracing only adds clock reads).
        let mut stats = PruneStats::default();
        let mut stage_sums_ns = [0u64; NUM_STAGES];
        for q in queries {
            let (_, trace) = recommender.recommend_traced(strategy, q, TOP_K, &[], Tracer::ON);
            stats.absorb(trace.stats);
            for stage in Stage::ALL {
                stage_sums_ns[stage.index()] += trace.stage(stage).ns;
            }
        }
        let stage_total = stage_sums_ns.iter().sum::<u64>().max(1);
        println!(
            "{:<9} naive {:>9.3} ms/query | pruned {:>9.3} ms/query | speedup {:>5.2}x | \
             scanned {:>6} pruned {:>6} exact {:>6} prune-rate {:>5.1}%",
            strategy.label(),
            naive * 1e3,
            pruned * 1e3,
            naive / pruned,
            stats.scanned,
            stats.pruned,
            stats.exact_evals,
            100.0 * stats.prune_rate(),
        );
        println!(
            "          tiers: anchor-pruned {} | embedding-pruned {} | \
             cap-aborted sweeps {} | full exact sweeps {}",
            stats.pruned - stats.pruned_embed,
            stats.pruned_embed,
            stats.cap_aborted,
            stats.full_sweeps,
        );
        let shares: Vec<String> = Stage::ALL
            .iter()
            .filter(|s| stage_sums_ns[s.index()] > 0)
            .map(|s| {
                format!(
                    "{} {:.1}%",
                    s.label(),
                    100.0 * stage_sums_ns[s.index()] as f64 / stage_total as f64
                )
            })
            .collect();
        println!("          stage shares (traced pass): {}", shares.join(" "));
        rows.push(Row {
            strategy,
            naive_s: naive,
            pruned_s: pruned,
            stats,
            stage_sums_ns,
        });
    }
    // Function-level attribution of the same workload: 2 s of SIGPROF
    // samples over a thread looping the headline pruned path.
    let profile = profile_headline(recommender, queries);
    match &profile {
        Some(p) => {
            let kernel = p.share_containing("emd_1d_soa_capped");
            println!(
                "profiler: {} samples @ {} Hz, emd_1d_soa_capped in {:.1}% of them",
                p.samples,
                p.hz,
                100.0 * kernel
            );
            for f in p.top(5) {
                println!("  {:>6}  {}", f.count, f.stack);
            }
        }
        None => println!("profiler: capture unavailable on this platform"),
    }
    println!();
    write_json(recommender, queries.len(), &rows, profile.as_ref());
}

fn write_json(
    recommender: &Recommender,
    queries: usize,
    rows: &[Row],
    profile: Option<&viderec_prof::Profile>,
) {
    // `cargo bench` runs with the package dir as cwd; anchor the default to
    // the workspace root so the artifact lands next to BENCH_serve.json.
    let out_path = std::env::var("SINGLE_QUERY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_single_query.json").into()
    });
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"single_query\",\n");
    json.push_str(
        "  \"description\": \"Pruned sequential recommend (ceiling-sorted scan over the \
         corpus-owned scoring arena) vs the unpruned reference scan over the same \
         candidate universe (recommend_unpruned_excluding). Bit-identical results \
         (tests/sequential_prune_equiv.rs); latency only. Stage shares come from one \
         traced pass per query (recommend_traced, tracer on).\",\n",
    );
    json.push_str(&format!("  \"date\": \"{}\",\n", today_utc()));
    json.push_str(&format!(
        "  \"host\": {{ \"cpus\": {}, \"arch\": \"{}\" }},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        std::env::consts::ARCH
    ));
    json.push_str("  \"command\": \"cargo bench -p viderec-bench --bench single_query\",\n");
    json.push_str(&format!(
        "  \"setup\": {{\n    \"community_hours\": 10.0,\n    \"corpus_videos\": {},\n    \
         \"users\": {},\n    \"queries\": {queries},\n    \"top_k\": {TOP_K},\n    \
         \"arena_bound\": \"{:?}\",\n    \"timing\": \"best of 3 rounds x 5 reps, per-query \
         wall time\"\n  }},\n",
        recommender.num_videos(),
        recommender.num_users(),
        recommender.config().prune_bound,
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let stage_total = r.stage_sums_ns.iter().sum::<u64>().max(1);
        json.push_str(&format!(
            "    {{\n      \"strategy\": \"{}\",\n      \"naive_ms_per_query\": {:.3},\n      \
             \"pruned_ms_per_query\": {:.3},\n      \"speedup\": {:.2},\n      \
             \"scanned\": {},\n      \"pruned\": {},\n      \"exact_evals\": {},\n      \
             \"prune_rate\": {:.3},\n      \"tier_breakdown\": {{\n        \
             \"anchor_pruned\": {},\n        \"embedding_pruned\": {},\n        \
             \"cap_aborted_sweeps\": {},\n        \"full_exact_sweeps\": {}\n      }},\n      \
             \"stage_breakdown\": {{\n        \
             \"source\": \"one traced pass per query; shares of the stage sum\",\n        \
             \"emd_time_share\": {:.4},\n        \"stages\": [\n",
            r.strategy.label(),
            r.naive_s * 1e3,
            r.pruned_s * 1e3,
            r.naive_s / r.pruned_s,
            r.stats.scanned,
            r.stats.pruned,
            r.stats.exact_evals,
            r.stats.prune_rate(),
            r.stats.pruned - r.stats.pruned_embed,
            r.stats.pruned_embed,
            r.stats.cap_aborted,
            r.stats.full_sweeps,
            r.stage_sums_ns[Stage::Emd.index()] as f64 / stage_total as f64,
        ));
        for (j, stage) in Stage::ALL.iter().enumerate() {
            let ns = r.stage_sums_ns[stage.index()];
            json.push_str(&format!(
                "          {{ \"stage\": \"{}\", \"micros_per_query\": {}, \
                 \"share\": {:.4} }}{}\n",
                stage.label(),
                ns / 1_000 / queries.max(1) as u64,
                ns as f64 / stage_total as f64,
                if j + 1 < NUM_STAGES { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "        ]\n      }}\n    }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Sampling-profiler attribution of the headline path: which functions
    // the EMD stage's wall time actually belongs to (see the acceptance
    // notes — the stage share alone cannot distinguish kernel time from
    // eligibility work around it).
    if let Some(p) = profile {
        let kernel_share = p.share_containing("emd_1d_soa_capped");
        json.push_str(&format!(
            "  \"profile\": {{\n    \"source\": \"in-process SIGPROF sampler over a thread \
             looping the pruned CSF-SAR-H path; collapsed stacks, hottest first\",\n    \
             \"hz\": {},\n    \"window_ms\": {},\n    \"samples\": {},\n    \
             \"dropped\": {},\n    \"emd_kernel_sample_share\": {:.4},\n    \
             \"top_stacks\": [\n",
            p.hz, p.window_ms, p.samples, p.dropped, kernel_share,
        ));
        let top = p.top(10);
        for (i, f) in top.iter().enumerate() {
            json.push_str(&format!(
                "      {{ \"count\": {}, \"stack\": \"{}\" }}{}\n",
                f.count,
                json_escape(&f.stack),
                if i + 1 < top.len() { "," } else { "" }
            ));
        }
        json.push_str("    ]\n  },\n");
    }
    let headline = &rows[0];
    let speedup = headline.naive_s / headline.pruned_s;
    let headline_ms = headline.pruned_s * 1e3;
    let headline_stage_total = headline.stage_sums_ns.iter().sum::<u64>().max(1);
    let emd_share = headline.stage_sums_ns[Stage::Emd.index()] as f64 / headline_stage_total as f64;
    // The PR 2 seed of this file measured the pre-SoA, pre-embedding-tier
    // pruned path at 8.432 ms/query on this fixture; the kernel rework must
    // at least halve that and push EMD below 40% of the traced stage time.
    let baseline_pr2_ms = 8.432;
    let pass = speedup >= 1.3 && headline_ms <= baseline_pr2_ms / 2.0 && emd_share < 0.4;
    let kernel_share = profile
        .map(|p| format!("{:.4}", p.share_containing("emd_1d_soa_capped")))
        .unwrap_or_else(|| "null".to_string());
    json.push_str(&format!(
        "  \"acceptance\": {{\n    \"required_speedup_csf_sar_h_top20\": 1.3,\n    \
         \"measured_speedup_csf_sar_h_top20\": {speedup:.2},\n    \
         \"baseline_pr2_pruned_ms_per_query\": {baseline_pr2_ms},\n    \
         \"required_pruned_ms_per_query_max\": {:.3},\n    \
         \"measured_pruned_ms_per_query\": {headline_ms:.3},\n    \
         \"required_emd_time_share_below\": 0.4,\n    \
         \"measured_emd_time_share\": {emd_share:.4},\n    \
         \"profiler_emd_kernel_sample_share\": {kernel_share},\n    \
         \"pass\": {pass}\n  }},\n",
        baseline_pr2_ms / 2.0,
    ));
    json.push_str(
        "  \"notes\": \"Speedup exceeds the raw prune rate because the pruned path also \
         reads the arena's ingest-time caches (presorted EMD pairs, signature means, \
         anchor features) while the naive reference re-derives per-signature state inside \
         every exact kappa_J evaluation, as the pre-change sequential path did. \
         The emd_time_share gate predates the gather-dedup fix that shrank the non-EMD \
         stages to ~1.8 ms/query: the exact sweeps the matcher needs (every pair within \
         the match radius, ~12.5k per query) run at the merge sweep's serial-dependency \
         floor (~3-4 ns/step; interleaved multi-lane executors measured 0.2-1.1x scalar, \
         see DESIGN.md 12), so the remaining EMD time is eligibility work, not kernel \
         overhead. The profile section above attributes this at function level: the \
         kernel proper (emd_1d_soa_capped) is profiler_emd_kernel_sample_share of all \
         on-CPU samples, the rest of the emd stage being the embedding-tier recheck and \
         sweep bookkeeping — see EXPERIMENTS.md, PR 7 follow-up.\"\n}\n",
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}

fn bench_single_query(c: &mut Criterion) {
    let (recommender, queries) = setup();
    report(&recommender, &queries);

    let mut group = c.benchmark_group("single_query_top20");
    group.sample_size(10);
    for strategy in [Strategy::CsfSarH, Strategy::Csf] {
        group.bench_function(format!("{}_naive", strategy.label()), |b| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(recommender.recommend_unpruned_excluding(
                        strategy,
                        q,
                        TOP_K,
                        &[],
                    ));
                }
            })
        });
        group.bench_function(format!("{}_pruned", strategy.label()), |b| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(recommender.recommend(strategy, q, TOP_K));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_query);
criterion_main!(benches);
