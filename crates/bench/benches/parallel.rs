//! The sharded + pruned batch engine (DESIGN.md "Concurrency model &
//! pruning"): worker sweep 1/2/4/8, pruning counters, and the sequential vs
//! batch top-20 CSF-SAR-H throughput comparison.
//!
//! On a single hardware thread the speedup comes from query-level pruning —
//! candidates whose admissible score ceiling cannot beat the running 20th
//! score skip the exact `κJ` entirely — so the report prints the prune rate
//! next to each timing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use viderec_core::{
    ParallelConfig, ParallelRecommender, PruneBound, QueryVideo, Recommender, RecommenderConfig,
    Strategy,
};
use viderec_eval::community::{Community, CommunityConfig};

const TOP_K: usize = 20;

fn setup() -> (Recommender, Vec<QueryVideo>) {
    let community = Community::generate(CommunityConfig {
        hours: 10.0,
        ..Default::default()
    });
    let recommender =
        Recommender::build(RecommenderConfig::default(), community.source_corpus()).unwrap();
    let queries: Vec<QueryVideo> = community
        .query_videos()
        .into_iter()
        .take(8)
        .map(|id| QueryVideo {
            series: recommender.series_of(id).unwrap().clone(),
            users: recommender.users_of(id).unwrap().to_vec(),
        })
        .collect();
    (recommender, queries)
}

/// Batch wall time in seconds per batch: best of three measurement rounds of
/// `reps` repetitions each, so a single scheduler hiccup on a small container
/// cannot distort one configuration's line relative to the others.
fn time_batch(mut run: impl FnMut(), reps: usize) -> f64 {
    run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            run();
        }
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn report(recommender: &Recommender, queries: &[QueryVideo]) {
    println!("\n== batch top-{TOP_K} CSF-SAR-H: sequential vs sharded+pruned ==");
    println!(
        "corpus: {} videos, {} users, {} queries",
        recommender.num_videos(),
        recommender.num_users(),
        queries.len()
    );

    let reps = 5;
    let seq = time_batch(
        || {
            for q in queries {
                std::hint::black_box(recommender.recommend(Strategy::CsfSarH, q, TOP_K));
            }
        },
        reps,
    );
    println!(
        "sequential: {:>9.3} ms/batch  ({:.1} queries/s)",
        seq * 1e3,
        queries.len() as f64 / seq
    );

    for workers in [1usize, 2, 4, 8] {
        for (prune, tag) in [(false, "prune off"), (true, "prune on ")] {
            let par = ParallelRecommender::with_config(
                recommender,
                ParallelConfig {
                    workers,
                    prune,
                    bound: PruneBound::default(),
                    max_threads: None,
                },
            );
            let t = time_batch(
                || {
                    std::hint::black_box(par.recommend_batch(Strategy::CsfSarH, queries, TOP_K));
                },
                reps,
            );
            // Counters from one extra run (identical work: the engine is
            // deterministic).
            let stats = par
                .recommend_batch_with_stats(Strategy::CsfSarH, queries, TOP_K)
                .into_iter()
                .fold(viderec_core::PruneStats::default(), |mut acc, (_, s)| {
                    acc.absorb(s);
                    acc
                });
            println!(
                "workers={workers} {tag}: {:>9.3} ms/batch  speedup {:>5.2}x  \
                 scanned {:>6}  pruned {:>6}  exact {:>6}  prune-rate {:>5.1}%",
                t * 1e3,
                seq / t,
                stats.scanned,
                stats.pruned,
                stats.exact_evals,
                100.0 * stats.prune_rate()
            );
        }
    }

    // Full-scan strategy for contrast: pruning has the whole corpus to cut.
    let par = ParallelRecommender::with_config(
        recommender,
        ParallelConfig {
            workers: 4,
            prune: true,
            bound: PruneBound::default(),
            max_threads: None,
        },
    );
    let seq_sar = time_batch(
        || {
            for q in queries {
                std::hint::black_box(recommender.recommend(Strategy::CsfSar, q, TOP_K));
            }
        },
        reps,
    );
    let par_sar = time_batch(
        || {
            std::hint::black_box(par.recommend_batch(Strategy::CsfSar, queries, TOP_K));
        },
        reps,
    );
    println!(
        "CSF-SAR full scan: sequential {:.3} ms/batch, workers=4 pruned {:.3} ms/batch \
         (speedup {:.2}x)\n",
        seq_sar * 1e3,
        par_sar * 1e3,
        seq_sar / par_sar
    );
}

fn bench_parallel(c: &mut Criterion) {
    let (recommender, queries) = setup();
    report(&recommender, &queries);

    let mut group = c.benchmark_group("batch_top20_csf_sar_h");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(recommender.recommend(Strategy::CsfSarH, q, TOP_K));
            }
        })
    });
    for workers in [1usize, 2, 4, 8] {
        let par = ParallelRecommender::with_config(
            &recommender,
            ParallelConfig {
                workers,
                prune: true,
                bound: PruneBound::default(),
                max_threads: None,
            },
        );
        group.bench_function(format!("workers_{workers}_pruned"), |b| {
            b.iter(|| std::hint::black_box(par.recommend_batch(Strategy::CsfSarH, &queries, TOP_K)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
