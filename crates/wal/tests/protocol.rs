//! Sequential tests for the durability ordering protocol. The concurrent
//! interleavings are explored exhaustively in
//! `crates/check/tests/model_wal.rs` against the same source file.

use viderec_wal::{writer_round, DurabilityGate};

#[test]
fn gate_tracks_rounds_in_order() {
    let gate = DurabilityGate::new(10);
    assert_eq!(gate.appended(), 10);
    assert_eq!(gate.acked(), 10);
    assert_eq!(gate.lag(), 0);

    gate.record_appended(12);
    assert_eq!(gate.lag(), 2);
    assert!(gate.acked() <= gate.appended());
    gate.record_acked(12);
    assert_eq!(gate.lag(), 0);
}

#[test]
fn writer_round_orders_append_before_apply() {
    let gate = DurabilityGate::new(0);
    let trace = std::cell::RefCell::new(Vec::new());
    for lsn in 1..=3u64 {
        writer_round(
            &gate,
            lsn,
            || trace.borrow_mut().push(("append", lsn)),
            || trace.borrow_mut().push(("apply", lsn)),
        );
        assert_eq!(gate.appended(), lsn);
        assert_eq!(gate.acked(), lsn);
    }
    assert_eq!(
        trace.into_inner(),
        vec![
            ("append", 1),
            ("apply", 1),
            ("append", 2),
            ("apply", 2),
            ("append", 3),
            ("apply", 3),
        ]
    );
}

#[test]
fn debug_formats_both_counters() {
    let gate = DurabilityGate::new(7);
    gate.record_appended(9);
    let s = format!("{gate:?}");
    assert!(s.contains("appended: 9"), "missing appended in {s}");
    assert!(s.contains("acked: 7"), "missing acked in {s}");
}
