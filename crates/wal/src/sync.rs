//! Synchronization facade for the model-checkable protocol module.
//!
//! [`crate::protocol`] imports primitives through `super::sync` so that
//! `viderec-check` can compile the identical source against its instrumented
//! shim (`crates/check/src/shipped_wal.rs` swaps this module out with a
//! `#[path]` include). Keep the surface to exactly what `protocol.rs` uses.

pub use std::sync::atomic::{AtomicU64, Ordering};
