//! LSN-stamped snapshot store with atomic publication.
//!
//! A snapshot file is `snap-<covered_lsn:020>.snap`:
//!
//! ```text
//! magic "VRECSNP1" (8) | covered_lsn u64 | corpus_len u64 | events_len u64
//! | crc u32 over (corpus ‖ events) | corpus bytes | events bytes
//! ```
//!
//! The corpus section is the serving layer's boot corpus in its text wire
//! format; the events section is a *WAL record stream* — the exact framed
//! bytes of records 1..=covered_lsn, so a checkpoint extends the previous
//! snapshot by literal byte-copy of the log tail and recovery replays the
//! same event boundaries the live server applied (batch boundaries change
//! maintenance outcomes, so they must be preserved bit-for-bit).
//!
//! Publication is crash-atomic: write to `.tmp`, fsync the file, `rename`
//! into place, fsync the directory. Only then may the covered segments be
//! retired. Readers therefore never observe a partial snapshot; a snapshot
//! that fails its CRC can only mean media corruption, and
//! [`SnapshotStore::load_latest`] falls back to the previous retained one.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::Crc32;
use crate::log::WalError;

const MAGIC: &[u8; 8] = b"VRECSNP1";
const HEADER_LEN: usize = 8 + 8 + 8 + 8 + 4;
const PREFIX: &str = "snap-";
const SUFFIX: &str = ".snap";
/// How many published snapshots to retain (the newest plus one fallback).
const RETAIN: usize = 2;

/// A decoded snapshot: the boot corpus plus the framed event records
/// 1..=covered_lsn, both as opaque bytes the serving layer interprets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Every record with `lsn <= covered_lsn` is reflected in this snapshot.
    pub covered_lsn: u64,
    /// Boot corpus section (text wire format).
    pub corpus: Vec<u8>,
    /// Event section: a WAL record stream (see [`crate::log::iter_records`]).
    pub events: Vec<u8>,
}

/// Directory-backed snapshot store.
pub struct SnapshotStore {
    dir: PathBuf,
}

fn snap_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("{PREFIX}{lsn:020}{SUFFIX}"))
}

fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

impl SnapshotStore {
    /// A store over `dir` (created if missing).
    pub fn open(dir: &Path) -> Result<Self, WalError> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// Serializes and crash-atomically publishes `snapshot`, then prunes all
    /// but the newest [`RETAIN`] snapshots. Returns the published path.
    pub fn write(&self, snapshot: &Snapshot) -> Result<PathBuf, WalError> {
        let mut crc = Crc32::new();
        crc.update(&snapshot.corpus);
        crc.update(&snapshot.events);
        let mut bytes =
            Vec::with_capacity(HEADER_LEN + snapshot.corpus.len() + snapshot.events.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&snapshot.covered_lsn.to_le_bytes());
        bytes.extend_from_slice(&(snapshot.corpus.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&(snapshot.events.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc.finish().to_le_bytes());
        bytes.extend_from_slice(&snapshot.corpus);
        bytes.extend_from_slice(&snapshot.events);

        let final_path = snap_path(&self.dir, snapshot.covered_lsn);
        let tmp_path = final_path.with_extension("tmp");
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp_path, &final_path)?;
        fsync_dir(&self.dir)?;
        self.prune()?;
        Ok(final_path)
    }

    /// LSNs of every published snapshot, ascending.
    fn published(&self) -> Result<Vec<u64>, WalError> {
        let mut lsns = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(digits) = name
                .strip_prefix(PREFIX)
                .and_then(|r| r.strip_suffix(SUFFIX))
            {
                if let Ok(lsn) = digits.parse::<u64>() {
                    lsns.push(lsn);
                }
            }
        }
        lsns.sort_unstable();
        Ok(lsns)
    }

    /// Deletes everything but the newest [`RETAIN`] snapshots, plus any
    /// stale `.tmp` leftovers from a crashed publication.
    fn prune(&self) -> Result<(), WalError> {
        let lsns = self.published()?;
        if lsns.len() > RETAIN {
            for &lsn in &lsns[..lsns.len() - RETAIN] {
                fs::remove_file(snap_path(&self.dir, lsn))?;
            }
        }
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp")
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(PREFIX))
            {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(())
    }

    fn load_at(&self, lsn: u64) -> Result<Snapshot, WalError> {
        let path = snap_path(&self.dir, lsn);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let fail = |msg: &str| WalError::Corrupt(format!("snapshot {}: {msg}", path.display()));
        if bytes.len() < HEADER_LEN {
            return Err(fail("shorter than its header"));
        }
        if &bytes[0..8] != MAGIC {
            return Err(fail("bad magic"));
        }
        let covered_lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let corpus_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let events_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(bytes[32..36].try_into().unwrap());
        if covered_lsn != lsn {
            return Err(fail("stamped lsn disagrees with the file name"));
        }
        let Some(total) = corpus_len
            .checked_add(events_len)
            .and_then(|n| n.checked_add(HEADER_LEN))
        else {
            return Err(fail("section lengths overflow"));
        };
        if bytes.len() != total {
            return Err(fail("section lengths disagree with the file size"));
        }
        let corpus = &bytes[HEADER_LEN..HEADER_LEN + corpus_len];
        let events = &bytes[HEADER_LEN + corpus_len..];
        let mut crc = Crc32::new();
        crc.update(corpus);
        crc.update(events);
        if crc.finish() != want_crc {
            return Err(fail("crc mismatch"));
        }
        Ok(Snapshot {
            covered_lsn,
            corpus: corpus.to_vec(),
            events: events.to_vec(),
        })
    }

    /// Loads the newest valid snapshot. Returns `Ok(None)` for a fresh
    /// directory; if the newest snapshot is unreadable (media corruption —
    /// publication is atomic) it falls back to an older retained one and
    /// reports why in the second slot. Errors only if every snapshot on disk
    /// is invalid.
    #[allow(clippy::type_complexity)]
    pub fn load_latest(&self) -> Result<Option<(Snapshot, Option<String>)>, WalError> {
        let lsns = self.published()?;
        if lsns.is_empty() {
            return Ok(None);
        }
        let mut note: Option<String> = None;
        let mut last_err: Option<WalError> = None;
        for &lsn in lsns.iter().rev() {
            match self.load_at(lsn) {
                Ok(snapshot) => return Ok(Some((snapshot, note))),
                Err(e) => {
                    if note.is_none() {
                        note = Some(format!("fell back past snapshot {lsn}: {e}"));
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| WalError::Corrupt("no loadable snapshot".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "viderec-snap-{}-{name}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(lsn: u64) -> Snapshot {
        Snapshot {
            covered_lsn: lsn,
            corpus: format!("ingest {lsn} - -\n").into_bytes(),
            events: vec![lsn as u8; lsn as usize],
        }
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = scratch("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        store.write(&sample(7)).unwrap();
        let (snap, note) = store.load_latest().unwrap().unwrap();
        assert_eq!(snap, sample(7));
        assert!(note.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_wins_and_pruning_retains_two() {
        let dir = scratch("prune");
        let store = SnapshotStore::open(&dir).unwrap();
        for lsn in [3, 9, 21, 40] {
            store.write(&sample(lsn)).unwrap();
        }
        let (snap, _) = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.covered_lsn, 40);
        assert_eq!(store.published().unwrap(), vec![21, 40]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_with_a_note() {
        let dir = scratch("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(&sample(5)).unwrap();
        store.write(&sample(11)).unwrap();
        let newest = snap_path(&dir, 11);
        let mut bytes = fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let (snap, note) = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.covered_lsn, 5);
        assert!(note.unwrap().contains("crc mismatch"));

        // Corrupt the fallback too: now loading must fail.
        let older = snap_path(&dir, 5);
        let mut bytes = fs::read(&older).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&older, &bytes).unwrap();
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_ignored_and_cleaned() {
        let dir = scratch("tmp");
        let store = SnapshotStore::open(&dir).unwrap();
        fs::write(dir.join("snap-00000000000000000099.tmp"), b"half written").unwrap();
        assert!(store.load_latest().unwrap().is_none());
        store.write(&sample(3)).unwrap();
        assert!(!dir.join("snap-00000000000000000099.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_detected() {
        let dir = scratch("trunc");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(&sample(4)).unwrap();
        let path = snap_path(&dir, 4);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
