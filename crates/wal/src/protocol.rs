//! The single-writer durability ordering protocol.
//!
//! The maintenance thread is the only writer: for every update batch it must
//! **append** (WAL record on disk, per fsync policy) *before* it **applies**
//! the batch to the master recommender and acknowledges the client. The
//! [`DurabilityGate`] pins that ordering into two monotone counters:
//!
//! - `appended` — highest LSN framed into the log,
//! - `acked`    — highest LSN applied and acknowledged,
//!
//! with the crash-safety invariant `acked <= appended` at every instant any
//! other thread can observe: a crash then loses at most unacknowledged work,
//! never an acknowledged event. `record_appended` / `record_acked` store with
//! `Release` and the getters load with `Acquire`, so an observer that sees
//! `acked >= L` also sees every effect that happened before LSN `L` was
//! appended — this is the ordering `crates/check` model-checks exhaustively
//! (`tests/model_wal.rs`), including a broken apply-before-append variant
//! that must fail.
//!
//! Imports go through `super::sync` so the check harness can compile this
//! exact file against its instrumented shim.

use super::sync::{AtomicU64, Ordering};

/// Monotone `appended` / `acked` LSN pair guarding the append-before-apply
/// ordering (see module docs).
pub struct DurabilityGate {
    appended: AtomicU64,
    acked: AtomicU64,
}

// Manual impl: the check shim's `AtomicU64` has no `Debug`, and this file is
// compiled verbatim against it.
impl core::fmt::Debug for DurabilityGate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DurabilityGate")
            .field("appended", &self.appended())
            .field("acked", &self.acked())
            .finish()
    }
}

impl DurabilityGate {
    /// A gate with nothing appended or acknowledged beyond `base` (the LSN
    /// already covered by the snapshot + log recovery at boot).
    pub fn new(base: u64) -> Self {
        Self {
            appended: AtomicU64::new(base),
            acked: AtomicU64::new(base),
        }
    }

    /// Declares every record up to `lsn` framed into the log. Must be called
    /// by the single writer *before* the corresponding events are applied.
    pub fn record_appended(&self, lsn: u64) {
        self.appended.store(lsn, Ordering::Release);
    }

    /// Declares every event up to `lsn` applied and acknowledged. The writer
    /// may only call this after [`DurabilityGate::record_appended`] covered
    /// the same `lsn`.
    pub fn record_acked(&self, lsn: u64) {
        self.acked.store(lsn, Ordering::Release);
    }

    /// Highest appended LSN.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    /// Highest acknowledged LSN.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Appended-but-not-yet-acknowledged backlog. Read `acked` first: with
    /// the writer moving both counters forward, reading in that order can
    /// understate but never overstate the backlog, and can never underflow.
    pub fn lag(&self) -> u64 {
        let acked = self.acked();
        self.appended().saturating_sub(acked)
    }
}

/// Runs one writer round in the protocol order: `append` (frame + commit the
/// batch to the log), publish `appended`, then `apply` (mutate the master,
/// acknowledge), then publish `acked`. Centralizing the order here keeps the
/// serving layer incapable of acking ahead of the log — the exact mistake
/// the must-fail model variant makes.
pub fn writer_round(gate: &DurabilityGate, lsn: u64, append: impl FnOnce(), apply: impl FnOnce()) {
    append();
    gate.record_appended(lsn);
    apply();
    gate.record_acked(lsn);
}

// No `#[cfg(test)]` module here on purpose: `crates/check` includes this
// file verbatim via `#[path]` and compiles it against its instrumented shim,
// which must not drag shipped unit tests along. The sequential tests live in
// `crates/wal/tests/protocol.rs`; the concurrent ones are model-checked in
// `crates/check/tests/model_wal.rs`.
