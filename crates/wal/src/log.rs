//! Segmented append-only write-ahead log.
//!
//! Records are framed `[payload_len u32][crc u32][lsn u64][payload]` (all
//! little-endian), CRC-32 over `lsn ‖ payload`, so a torn final write is
//! detectable: the tail either fails the length check, the CRC, or the LSN
//! contiguity check, and recovery truncates the file back to the last valid
//! frame. Segments are named `wal-<first_lsn:020>.seg`; the writer rotates to
//! a fresh segment once the active one crosses `segment_bytes`, fsyncing the
//! closed segment on the way out so every *closed* segment is durable in
//! full. [`Wal::retire_through`] deletes closed segments fully covered by a
//! published snapshot; the active segment is never deleted.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::crc::Crc32;

/// Bytes of frame metadata before each payload: `len u32 | crc u32 | lsn u64`.
pub const RECORD_HEADER_LEN: usize = 16;

/// Upper bound on a single payload. A frame whose length field exceeds this
/// is garbage (torn tail or corruption), not a real record — without the
/// bound a torn length field could ask recovery to allocate gigabytes.
pub const MAX_RECORD_PAYLOAD: usize = 64 << 20;

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".seg";

/// When appended records are pushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync once per committed batch: an acknowledged update is durable.
    Batch,
    /// fsync at most once per interval: bounded data loss on power failure.
    Interval(Duration),
    /// Never fsync from the hot path (OS flushes eventually): fastest, an
    /// acknowledged update survives process crash but not power loss.
    Off,
}

impl FsyncPolicy {
    /// Parses `batch`, `off`, or `interval:<millis>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "batch" => Ok(Self::Batch),
            "off" => Ok(Self::Off),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| Self::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad fsync interval '{ms}'")),
                None => Err(format!(
                    "unknown fsync policy '{other}' (want batch|off|interval:<ms>)"
                )),
            },
        }
    }

    /// Stable label for metrics and logs.
    pub fn label(&self) -> String {
        match self {
            Self::Batch => "batch".to_string(),
            Self::Interval(d) => format!("interval:{}", d.as_millis()),
            Self::Off => "off".to_string(),
        }
    }
}

/// Writer knobs.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate to a new segment once the active one reaches this size.
    pub segment_bytes: u64,
    /// When appends become durable.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Batch,
        }
    }
}

/// One recovered or framed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Log sequence number (assigned by the writer, contiguous from 1).
    pub lsn: u64,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// WAL failure: an I/O error, or log corruption recovery must not paper over.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Invalid bytes somewhere torn-tail truncation cannot explain (e.g. a
    /// bad CRC in a non-final segment, or a broken LSN chain).
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal io error: {e}"),
            Self::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// A closed (rotated) segment: fully written, fully durable.
#[derive(Debug, Clone)]
struct ClosedSegment {
    path: PathBuf,
    first_lsn: u64,
    last_lsn: u64,
}

/// Result of [`Wal::open`]: the writer plus everything recovery learned.
pub struct Recovery {
    /// The opened writer, positioned after the last valid record.
    pub wal: Wal,
    /// Every valid record found on disk, ascending LSN. The caller replays
    /// the suffix beyond its snapshot's covered LSN.
    pub records: Vec<Record>,
    /// Bytes dropped from the final segment's torn tail (0 if clean).
    pub truncated_bytes: u64,
    /// Human-readable description of the torn tail, if one was found.
    pub torn: Option<String>,
}

/// Single-writer segmented write-ahead log.
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    closed: Vec<ClosedSegment>,
    active: File,
    active_path: PathBuf,
    active_first_lsn: u64,
    active_bytes: u64,
    active_records: u64,
    next_lsn: u64,
    synced_lsn: u64,
    appended_unsynced: bool,
    last_sync: Instant,
}

fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{first_lsn:020}{SEGMENT_SUFFIX}"))
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Frames `payload` under `lsn` into the on-disk record format.
fn frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut crc = Crc32::new();
    crc.update(&lsn.to_le_bytes());
    crc.update(payload);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of scanning one contiguous record stream.
struct Scan {
    records: Vec<Record>,
    /// Offset just past the last valid record.
    valid_len: u64,
    /// Why scanning stopped early, if it did.
    torn: Option<String>,
}

/// Walks `bytes` frame by frame. `expect_first` pins the first record's LSN
/// (segment name / chain continuity); subsequent records must increment by 1.
fn scan_bytes(bytes: &[u8], expect_first: Option<u64>) -> Scan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut expect = expect_first;
    let torn = loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break None;
        }
        if rest.len() < RECORD_HEADER_LEN {
            break Some(format!(
                "{}-byte partial header at offset {offset}",
                rest.len()
            ));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let lsn = u64::from_le_bytes(rest[8..16].try_into().unwrap());
        if len > MAX_RECORD_PAYLOAD {
            break Some(format!("absurd payload length {len} at offset {offset}"));
        }
        if rest.len() < RECORD_HEADER_LEN + len {
            break Some(format!(
                "payload torn at offset {offset}: header claims {len} bytes, {} present",
                rest.len() - RECORD_HEADER_LEN
            ));
        }
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        let mut crc = Crc32::new();
        crc.update(&lsn.to_le_bytes());
        crc.update(payload);
        if crc.finish() != want_crc {
            break Some(format!("crc mismatch on lsn {lsn} at offset {offset}"));
        }
        if let Some(e) = expect {
            if lsn != e {
                break Some(format!("lsn {lsn} at offset {offset}, expected {e}"));
            }
        }
        expect = Some(lsn + 1);
        records.push(Record {
            lsn,
            payload: payload.to_vec(),
        });
        offset += RECORD_HEADER_LEN + len;
    };
    Scan {
        records,
        valid_len: offset as u64,
        torn,
    }
}

/// Iterates the records of a strict (CRC-protected elsewhere) record stream,
/// e.g. the events section of a snapshot. Unlike segment recovery, any
/// invalid frame here is an error — snapshots are atomic, never torn.
pub fn iter_records(bytes: &[u8]) -> Result<Vec<Record>, WalError> {
    let scan = scan_bytes(bytes, None);
    match scan.torn {
        Some(reason) => Err(WalError::Corrupt(format!(
            "record stream invalid: {reason}"
        ))),
        None => Ok(scan.records),
    }
}

fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

impl Wal {
    /// Opens (or initializes) the log in `dir`, scanning every segment,
    /// truncating a torn tail in the final one, and positioning the writer
    /// after the last valid record. With no segments on disk the first
    /// segment starts at `base_lsn + 1` (the caller's snapshot coverage).
    pub fn open(dir: &Path, options: WalOptions, base_lsn: u64) -> Result<Recovery, WalError> {
        fs::create_dir_all(dir)?;
        let mut names: Vec<u64> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(digits) = name
                .strip_prefix(SEGMENT_PREFIX)
                .and_then(|r| r.strip_suffix(SEGMENT_SUFFIX))
            {
                let first = digits.parse::<u64>().map_err(|_| {
                    WalError::Corrupt(format!("segment '{name}' has a non-numeric lsn"))
                })?;
                names.push(first);
            }
        }
        names.sort_unstable();

        if names.is_empty() {
            let first = base_lsn + 1;
            let path = segment_path(dir, first);
            let active = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            fsync_dir(dir)?;
            let wal = Wal {
                dir: dir.to_path_buf(),
                options,
                closed: Vec::new(),
                active,
                active_path: path,
                active_first_lsn: first,
                active_bytes: 0,
                active_records: 0,
                next_lsn: first,
                synced_lsn: first - 1,
                appended_unsynced: false,
                last_sync: Instant::now(),
            };
            return Ok(Recovery {
                wal,
                records: Vec::new(),
                truncated_bytes: 0,
                torn: None,
            });
        }

        let mut records: Vec<Record> = Vec::new();
        let mut closed: Vec<ClosedSegment> = Vec::new();
        let mut truncated_bytes = 0u64;
        let mut torn: Option<String> = None;
        let last_index = names.len() - 1;
        for (i, &first) in names.iter().enumerate() {
            let path = segment_path(dir, first);
            let bytes = read_file(&path)?;
            let scan = scan_bytes(&bytes, Some(first));
            let is_final = i == last_index;
            if let Some(reason) = scan.torn {
                if !is_final {
                    return Err(WalError::Corrupt(format!(
                        "non-final segment {}: {reason}",
                        path.display()
                    )));
                }
                truncated_bytes = bytes.len() as u64 - scan.valid_len;
                torn = Some(format!("segment {}: {reason}", path.display()));
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_len)?;
                f.sync_data()?;
            }
            if !is_final {
                let Some(last) = scan.records.last() else {
                    return Err(WalError::Corrupt(format!(
                        "non-final segment {} is empty",
                        path.display()
                    )));
                };
                if last.lsn + 1 != names[i + 1] {
                    return Err(WalError::Corrupt(format!(
                        "segment {} ends at lsn {} but the next segment starts at {}",
                        path.display(),
                        last.lsn,
                        names[i + 1]
                    )));
                }
                closed.push(ClosedSegment {
                    path,
                    first_lsn: first,
                    last_lsn: last.lsn,
                });
            }
            records.extend(scan.records);
        }

        let active_first = names[last_index];
        let active_path = segment_path(dir, active_first);
        let active_last = records.last().map(|r| r.lsn).unwrap_or(active_first - 1);
        let next_lsn = active_last.max(active_first - 1) + 1;
        let active = OpenOptions::new().append(true).open(&active_path)?;
        let active_bytes = active.metadata()?.len();
        let active_records = next_lsn - active_first;
        let wal = Wal {
            dir: dir.to_path_buf(),
            options,
            closed,
            active,
            active_path,
            active_first_lsn: active_first,
            active_bytes,
            active_records,
            next_lsn,
            // Everything recovered from disk survived; treat it as synced.
            synced_lsn: next_lsn - 1,
            appended_unsynced: false,
            last_sync: Instant::now(),
        };
        Ok(Recovery {
            wal,
            records,
            truncated_bytes,
            torn,
        })
    }

    /// Appends one payload, rotating segments as needed. Returns the record's
    /// LSN. Durability is governed by [`Wal::commit`] / [`Wal::sync`].
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if payload.len() > MAX_RECORD_PAYLOAD {
            return Err(WalError::Corrupt(format!(
                "payload of {} bytes exceeds the {MAX_RECORD_PAYLOAD}-byte record bound",
                payload.len()
            )));
        }
        if self.active_bytes >= self.options.segment_bytes && self.active_records > 0 {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let bytes = frame(lsn, payload);
        self.active.write_all(&bytes)?;
        self.active_bytes += bytes.len() as u64;
        self.active_records += 1;
        self.next_lsn += 1;
        self.appended_unsynced = true;
        Ok(lsn)
    }

    /// Closes the active segment (fsyncing it so closed segments are always
    /// fully durable) and starts a fresh one at the next LSN.
    fn rotate(&mut self) -> Result<(), WalError> {
        self.active.sync_data()?;
        self.synced_lsn = self.next_lsn - 1;
        self.appended_unsynced = false;
        self.last_sync = Instant::now();
        self.closed.push(ClosedSegment {
            path: self.active_path.clone(),
            first_lsn: self.active_first_lsn,
            last_lsn: self.next_lsn - 1,
        });
        let path = segment_path(&self.dir, self.next_lsn);
        self.active = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        fsync_dir(&self.dir)?;
        self.active_path = path;
        self.active_first_lsn = self.next_lsn;
        self.active_bytes = 0;
        self.active_records = 0;
        Ok(())
    }

    /// Applies the fsync policy after a batch of appends. Returns whether an
    /// fsync actually happened (for latency accounting).
    pub fn commit(&mut self) -> Result<bool, WalError> {
        if !self.appended_unsynced {
            return Ok(false);
        }
        let due = match self.options.fsync {
            FsyncPolicy::Batch => true,
            FsyncPolicy::Interval(d) => self.last_sync.elapsed() >= d,
            FsyncPolicy::Off => false,
        };
        if due {
            self.sync()?;
        }
        Ok(due)
    }

    /// Unconditional fsync of the active segment (policy override — used at
    /// rotation, before snapshots, and on graceful shutdown).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.active.sync_data()?;
        self.synced_lsn = self.next_lsn - 1;
        self.appended_unsynced = false;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// LSN of the most recently appended record (0 before the first append).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Highest LSN known flushed to stable storage.
    pub fn synced_lsn(&self) -> u64 {
        self.synced_lsn
    }

    /// Live segment files (closed + active).
    pub fn segment_count(&self) -> usize {
        self.closed.len() + 1
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.options.fsync
    }

    /// Deletes closed segments whose entire LSN range is `<= lsn` (i.e. is
    /// covered by a durably published snapshot). The active segment is never
    /// deleted. Returns how many segments were retired.
    pub fn retire_through(&mut self, lsn: u64) -> Result<usize, WalError> {
        let mut retired = 0;
        let mut keep = Vec::with_capacity(self.closed.len());
        for seg in self.closed.drain(..) {
            if seg.last_lsn <= lsn {
                fs::remove_file(&seg.path)?;
                retired += 1;
            } else {
                keep.push(seg);
            }
        }
        self.closed = keep;
        if retired > 0 {
            fsync_dir(&self.dir)?;
        }
        Ok(retired)
    }

    /// Appends the raw framed bytes of every record in `(from_excl, to_incl]`
    /// to `out`, reading them back from the segment files. Used to extend a
    /// snapshot's event stream without re-serializing live state. Errors if
    /// the range is not fully present on disk.
    pub fn copy_records(
        &mut self,
        from_excl: u64,
        to_incl: u64,
        out: &mut Vec<u8>,
    ) -> Result<u64, WalError> {
        if to_incl <= from_excl {
            return Ok(0);
        }
        let mut copied = 0u64;
        let mut expect = from_excl + 1;
        let paths: Vec<(u64, u64, PathBuf)> = self
            .closed
            .iter()
            .map(|s| (s.first_lsn, s.last_lsn, s.path.clone()))
            .chain(std::iter::once((
                self.active_first_lsn,
                self.next_lsn - 1,
                self.active_path.clone(),
            )))
            .collect();
        for (first, last, path) in paths {
            if last < expect || first > to_incl {
                continue;
            }
            let bytes = read_file(&path)?;
            let scan = scan_bytes(&bytes, Some(first));
            if let Some(reason) = scan.torn {
                return Err(WalError::Corrupt(format!(
                    "segment {} unreadable while snapshotting: {reason}",
                    path.display()
                )));
            }
            let mut offset = 0usize;
            for rec in &scan.records {
                let frame_len = RECORD_HEADER_LEN + rec.payload.len();
                if rec.lsn > from_excl && rec.lsn <= to_incl {
                    if rec.lsn != expect {
                        return Err(WalError::Corrupt(format!(
                            "snapshot copy expected lsn {expect}, found {}",
                            rec.lsn
                        )));
                    }
                    out.extend_from_slice(&bytes[offset..offset + frame_len]);
                    expect += 1;
                    copied += 1;
                }
                offset += frame_len;
            }
        }
        if copied != to_incl - from_excl {
            return Err(WalError::Corrupt(format!(
                "snapshot copy wanted lsns ({from_excl}, {to_incl}] but only {copied} were on disk"
            )));
        }
        Ok(copied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "viderec-wal-{}-{name}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, segment_bytes: u64) -> Recovery {
        Wal::open(
            dir,
            WalOptions {
                segment_bytes,
                fsync: FsyncPolicy::Batch,
            },
            0,
        )
        .unwrap()
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = scratch("roundtrip");
        let mut rec = open(&dir, 1 << 20);
        for i in 1..=10u64 {
            let lsn = rec.wal.append(format!("payload {i}").as_bytes()).unwrap();
            assert_eq!(lsn, i);
        }
        assert!(rec.wal.commit().unwrap());
        assert_eq!(rec.wal.synced_lsn(), 10);
        drop(rec);

        let rec = open(&dir, 1 << 20);
        assert_eq!(rec.truncated_bytes, 0);
        assert!(rec.torn.is_none());
        assert_eq!(rec.records.len(), 10);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
            assert_eq!(r.payload, format!("payload {}", i + 1).into_bytes());
        }
        let mut wal = rec.wal;
        assert_eq!(wal.last_lsn(), 10);
        assert_eq!(wal.append(b"next").unwrap(), 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_starts_at_base_plus_one() {
        let dir = scratch("base");
        let mut rec = Wal::open(&dir, WalOptions::default(), 41).unwrap();
        assert_eq!(rec.wal.last_lsn(), 41);
        assert_eq!(rec.wal.append(b"x").unwrap(), 42);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn active_segment(dir: &Path) -> PathBuf {
        let mut names: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        names.sort();
        names.pop().unwrap()
    }

    #[test]
    fn torn_garbage_tail_is_truncated_not_fatal() {
        let dir = scratch("garbage");
        let mut rec = open(&dir, 1 << 20);
        for i in 0..5 {
            rec.wal.append(format!("event {i}").as_bytes()).unwrap();
        }
        rec.wal.sync().unwrap();
        drop(rec);
        let seg = active_segment(&dir);
        let clean_len = fs::metadata(&seg).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03])
            .unwrap();
        drop(f);

        let rec = open(&dir, 1 << 20);
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.truncated_bytes, 7);
        assert!(rec.torn.as_deref().unwrap().contains("partial header"));
        assert_eq!(fs::metadata(&seg).unwrap().len(), clean_len);
        let mut wal = rec.wal;
        assert_eq!(wal.append(b"after").unwrap(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_payload_and_absurd_length_are_truncated() {
        for (name, tail) in [
            ("payload", {
                // Header claims 100 payload bytes, only 3 follow.
                let mut t = frame(6, &[0u8; 100]);
                t.truncate(RECORD_HEADER_LEN + 3);
                t
            }),
            ("absurd", {
                let mut t = Vec::new();
                t.extend_from_slice(&(u32::MAX).to_le_bytes());
                t.extend_from_slice(&[0u8; 12]);
                t
            }),
        ] {
            let dir = scratch(name);
            let mut rec = open(&dir, 1 << 20);
            for i in 0..5 {
                rec.wal.append(format!("event {i}").as_bytes()).unwrap();
            }
            rec.wal.sync().unwrap();
            drop(rec);
            let seg = active_segment(&dir);
            let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
            f.write_all(&tail).unwrap();
            drop(f);

            let rec = open(&dir, 1 << 20);
            assert_eq!(rec.records.len(), 5, "{name}");
            assert!(rec.truncated_bytes > 0, "{name}");
            assert!(rec.torn.is_some(), "{name}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn corrupt_final_record_is_dropped() {
        let dir = scratch("crc");
        let mut rec = open(&dir, 1 << 20);
        for i in 0..5 {
            rec.wal.append(format!("event {i}").as_bytes()).unwrap();
        }
        rec.wal.sync().unwrap();
        drop(rec);
        let seg = active_segment(&dir);
        let mut bytes = read_file(&seg).unwrap();
        // Flip a bit in the last record's payload.
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let rec = open(&dir, 1 << 20);
        assert_eq!(rec.records.len(), 4);
        assert!(rec.torn.as_deref().unwrap().contains("crc mismatch"));
        let mut wal = rec.wal;
        // The truncated slot is reused.
        assert_eq!(wal.append(b"replacement").unwrap(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_non_final_segment_is_fatal() {
        let dir = scratch("midlog");
        let mut rec = open(&dir, 64); // tiny segments force rotation
        for i in 0..10 {
            rec.wal
                .append(format!("event number {i}").as_bytes())
                .unwrap();
        }
        rec.wal.sync().unwrap();
        assert!(rec.wal.segment_count() > 2);
        drop(rec);
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        let mut bytes = read_file(&segs[0]).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        fs::write(&segs[0], &bytes).unwrap();

        match Wal::open(&dir, WalOptions::default(), 0) {
            Err(WalError::Corrupt(msg)) => assert!(msg.contains("non-final")),
            other => panic!(
                "expected corruption error, got {:?}",
                other.map(|r| r.records)
            ),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_retirement() {
        let dir = scratch("rotate");
        let mut rec = open(&dir, 64);
        for i in 0..12 {
            rec.wal
                .append(format!("event number {i}").as_bytes())
                .unwrap();
        }
        rec.wal.sync().unwrap();
        let before = rec.wal.segment_count();
        assert!(before >= 3, "expected rotation, got {before} segments");

        // Nothing covered: nothing retired.
        assert_eq!(rec.wal.retire_through(0).unwrap(), 0);
        // Cover the first half: early segments go, active survives.
        let retired = rec.wal.retire_through(6).unwrap();
        assert!(retired >= 1);
        assert_eq!(rec.wal.segment_count(), before - retired);
        drop(rec);

        let rec = open(&dir, 64);
        assert!(rec.torn.is_none());
        let first = rec.records.first().unwrap().lsn;
        let last = rec.records.last().unwrap().lsn;
        assert!(first <= 7, "records after retirement must cover lsn 7+");
        assert_eq!(last, 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn copy_records_reproduces_exact_frames() {
        let dir = scratch("copy");
        let mut rec = open(&dir, 80);
        for i in 1..=9u64 {
            rec.wal
                .append(format!("payload number {i}").as_bytes())
                .unwrap();
        }
        let mut out = Vec::new();
        let copied = rec.wal.copy_records(2, 7, &mut out).unwrap();
        assert_eq!(copied, 5);
        let records = iter_records(&out).unwrap();
        assert_eq!(records.len(), 5);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 3);
            assert_eq!(r.payload, format!("payload number {}", r.lsn).into_bytes());
        }
        // Out-of-range asks fail loudly.
        assert!(rec.wal.copy_records(5, 20, &mut Vec::new()).is_err());
        // Empty range is a no-op.
        assert_eq!(rec.wal.copy_records(4, 4, &mut Vec::new()).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn iter_records_rejects_tampering() {
        let mut bytes = frame(1, b"alpha");
        bytes.extend_from_slice(&frame(2, b"beta"));
        assert_eq!(iter_records(&bytes).unwrap().len(), 2);
        let n = bytes.len();
        bytes[n - 1] ^= 0x10;
        assert!(iter_records(&bytes).is_err());
    }

    #[test]
    fn fsync_policy_parsing() {
        assert_eq!(FsyncPolicy::parse("batch").unwrap(), FsyncPolicy::Batch);
        assert_eq!(FsyncPolicy::parse("off").unwrap(), FsyncPolicy::Off);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("interval:x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap().label(),
            "interval:250"
        );
    }

    #[test]
    fn commit_respects_policy() {
        let dir = scratch("policy");
        let mut rec = Wal::open(
            &dir,
            WalOptions {
                segment_bytes: 1 << 20,
                fsync: FsyncPolicy::Off,
            },
            0,
        )
        .unwrap();
        rec.wal.append(b"x").unwrap();
        assert!(
            !rec.wal.commit().unwrap(),
            "fsync=off never syncs on commit"
        );
        assert_eq!(rec.wal.synced_lsn(), 0);
        rec.wal.sync().unwrap();
        assert_eq!(rec.wal.synced_lsn(), 1, "explicit sync overrides policy");
        assert!(!rec.wal.commit().unwrap(), "nothing pending");
        fs::remove_dir_all(&dir).unwrap();
    }
}
