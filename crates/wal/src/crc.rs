//! Hand-rolled CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The container has no registry access, so the checksum the WAL frames
//! depend on is implemented here and pinned by golden vectors — the standard
//! check value `crc32(b"123456789") == 0xCBF4_3926` guarantees we match
//! every other IEEE CRC-32 implementation bit-for-bit, which keeps log
//! segments portable across builds.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state, for checksumming a record without concatenating
/// its parts into one buffer.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (initial remainder `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum (post-inverted).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_vectors() {
        // The canonical CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"segmented write-ahead log record payload";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"comment 17 alice".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip {byte}:{bit} undetected");
            }
        }
    }
}
