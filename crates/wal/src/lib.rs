//! Durability subsystem for the serving layer: a segmented append-only
//! write-ahead log, LSN-stamped full-corpus snapshots, and the single-writer
//! append→apply→publish→snapshot protocol that makes crash recovery
//! bit-identical to an uninterrupted run.
//!
//! The crate is dependency-free by design (the build container has no
//! registry): CRC32 is hand-rolled in [`crc`], record framing and segment
//! management live in [`log`], atomic-rename snapshot publication in
//! [`snapshot`], and the ordering protocol the model checker exercises in
//! [`protocol`]. Payloads are opaque bytes — the serving layer encodes
//! `UpdateEvent`s with its bit-exact wire codec and hands them down here.
//!
//! Invariants this crate owns (see DESIGN.md §13 for the full protocol):
//!
//! - A record is `[len u32][crc u32][lsn u64][payload]`, all little-endian,
//!   CRC32 over `lsn ‖ payload`. Anything that fails the frame check in the
//!   **final** segment is a torn tail: truncated, reported, never fatal.
//!   The same failure in a non-final segment is corruption and *is* fatal.
//! - LSNs are assigned by the single writer, start at 1, and are contiguous
//!   across segment boundaries.
//! - A snapshot is published by temp-file + `rename`, fsynced (file then
//!   directory) *before* any segment it covers is retired, so the
//!   `snapshot ∪ log-tail` union always contains every appended record.

pub mod crc;
pub mod log;
pub mod protocol;
pub mod snapshot;
pub mod sync;

pub use crc::{crc32, Crc32};
pub use log::{
    iter_records, FsyncPolicy, Record, Recovery, Wal, WalError, WalOptions, RECORD_HEADER_LEN,
};
pub use protocol::{writer_round, DurabilityGate};
pub use snapshot::{Snapshot, SnapshotStore};
