//! `SocialUpdatesMaintenance` (Fig. 5): incremental sub-community upkeep
//! under new comment connections.
//!
//! Given the connections of a recent time period, the algorithm:
//!
//! 1. strengthens the UIG with the new edges; when a connection's weight
//!    exceeds `w` — the lightest intra-community edge weight of the current
//!    partition — and it crosses two sub-communities, the two are **merged**
//!    (lines 6–10) and the merged community is flagged as a later split
//!    candidate (line 11);
//! 2. while fewer than `k` sub-communities remain, the flagged (or, failing
//!    that, any splittable) community with the lightest internal edge is
//!    **split** at its weakest link (lines 14–18);
//! 3. every operation is counted so the Eq. 8 cost model can price the
//!    maintenance run, and all touched communities are reported so the owner
//!    of the inverted index and descriptor vectors can update exactly the
//!    affected dimensions (lines 9–10, 19–20).

use crate::extract::{extract_subcommunities, Partition};
use crate::graph::UserInterestGraph;
use crate::user::UserId;

/// Operation counters feeding the Eq. 8 cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateCounters {
    /// User → sub-community mappings performed (`|E| · c_h` term).
    pub hash_mappings: usize,
    /// Index entries rewritten (`|g| · t₁` terms).
    pub index_updates: usize,
    /// Element checks during community partitioning (`|g| · t₃` term).
    pub partition_checks: usize,
    /// Communities whose descriptor dimensions changed (`N · t₂` pricing is
    /// completed by the caller, who knows the per-community video counts).
    pub communities_touched: usize,
}

/// What a maintenance run did.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Community index pairs that merged (pre-renumbering indices).
    pub merges: Vec<(usize, usize)>,
    /// Number of split operations performed.
    pub splits: usize,
    /// Users whose community assignment changed.
    pub reassigned_users: Vec<UserId>,
    /// Operation counters for the cost model.
    pub counters: UpdateCounters,
}

/// Incrementally maintained sub-community state.
#[derive(Debug, Clone)]
pub struct SocialUpdatesMaintenance {
    graph: UserInterestGraph,
    /// Dense user → community assignment.
    assignment: Vec<usize>,
    /// Members per community (parallel to live community indices; merged-away
    /// communities become empty and are compacted on [`Self::partition`]).
    members: Vec<Vec<UserId>>,
    /// Target community count `k`.
    k: usize,
}

impl SocialUpdatesMaintenance {
    /// Bootstraps maintenance state with a fresh extraction at `k`
    /// sub-communities.
    pub fn new(graph: UserInterestGraph, k: usize) -> Self {
        let partition = extract_subcommunities(&graph, k);
        let assignment = partition.assignment().to_vec();
        let members = partition.communities().to_vec();
        Self {
            graph,
            assignment,
            members,
            k,
        }
    }

    /// The target community count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of live (non-empty) communities.
    pub fn live_communities(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// The current partition, densely renumbered.
    pub fn partition(&self) -> Partition {
        let mut remap = vec![usize::MAX; self.members.len()];
        let mut next = 0;
        for (i, m) in self.members.iter().enumerate() {
            if !m.is_empty() {
                remap[i] = next;
                next += 1;
            }
        }
        Partition::from_assignment(self.assignment.iter().map(|&c| remap[c]).collect())
    }

    /// The maintained graph.
    pub fn graph(&self) -> &UserInterestGraph {
        &self.graph
    }

    /// The *raw* user → community-slot assignment. Slot indices are stable
    /// across maintenance runs (merged-away slots go empty, splits append new
    /// slots), which is what lets descriptor vectors be updated on only their
    /// affected dimensions instead of being renumbered wholesale.
    pub fn assignment_raw(&self) -> &[usize] {
        &self.assignment
    }

    /// Number of community slots, live or empty. Descriptor vectors are
    /// dimensioned by this.
    pub fn num_slots(&self) -> usize {
        self.members.len()
    }

    /// Members of a community slot (empty for merged-away slots).
    pub fn slot_members(&self, slot: usize) -> &[UserId] {
        &self.members[slot]
    }

    /// `w` — the lightest edge weight that is *internal* to some current
    /// sub-community (Fig. 5's merge/split threshold). `None` when no
    /// community has an internal edge.
    pub fn lightest_intra_edge_weight(&self) -> Option<u32> {
        self.graph
            .edges()
            .filter(|&(a, b, _)| self.assignment[a.index()] == self.assignment[b.index()])
            .map(|(_, _, w)| w)
            .min()
    }

    /// Applies one period's new connections (Fig. 5).
    ///
    /// Each `(a, b, weight)` adds `weight` to the UIG edge `a–b`. Users with
    /// ids beyond the current space are admitted first and join the community
    /// of their connection partner (a fresh registered user has no community
    /// until their first interaction).
    pub fn apply_connections(
        &mut self,
        connections: &[(UserId, UserId, u32)],
    ) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();
        let w = self.lightest_intra_edge_weight().unwrap_or(u32::MAX);
        let mut split_flags: Vec<bool> = vec![false; self.members.len()];
        let mut touched: Vec<bool> = vec![false; self.members.len()];

        for &(a, b, weight) in connections {
            if a == b || weight == 0 {
                continue;
            }
            self.admit(a, b, &mut report);
            self.admit(b, a, &mut report);
            self.graph.add_edge_weight(a, b, weight);
            // Lines 4–5: map both endpoints to their sub-communities.
            report.counters.hash_mappings += 2;
            let (ca, cb) = (self.assignment[a.index()], self.assignment[b.index()]);
            let edge_weight = self.graph.weight(a, b);
            if edge_weight > w {
                if ca != cb {
                    // Lines 7–11: union, update index/descriptors, flag.
                    self.merge(ca, cb, &mut report, &mut touched);
                    split_flags[self.assignment[a.index()]] = true;
                } else {
                    // Lines 12–13: strong internal edge — split candidate.
                    split_flags[ca] = true;
                }
            }
        }

        // Lines 14–20: restore the community count to k by splitting.
        while self.live_communities() < self.k {
            let candidate = self
                .splittable_community(&split_flags)
                .or_else(|| self.splittable_community(&vec![true; self.members.len()]));
            let Some(c) = candidate else { break };
            self.split(c, &mut report, &mut touched);
            if c < split_flags.len() {
                split_flags[c] = false;
            }
        }

        report.counters.communities_touched = touched.iter().filter(|&&t| t).count();
        report
    }

    /// Ages every UIG connection by `amount` (§4.2.4: stale connections
    /// "become invalid" as interests drift) and splits any community whose
    /// induced subgraph fell apart, so communities always remain internally
    /// connected. Counterpart of [`Self::apply_connections`] for the decay
    /// direction of community dynamics.
    pub fn age_connections(&mut self, amount: u32) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();
        self.graph.decay_all(amount);
        // Fragmented communities split into their connected components: the
        // component holding the first member keeps the slot, the rest move
        // to fresh slots.
        let live: Vec<usize> = (0..self.members.len())
            .filter(|&c| self.members[c].len() >= 2)
            .collect();
        for c in live {
            let members = self.members[c].clone();
            report.counters.partition_checks += members.len();
            let components = self.components_of(&members);
            if components.len() <= 1 {
                continue;
            }
            let mut keep = Vec::new();
            for (i, comp) in components.into_iter().enumerate() {
                if i == 0 {
                    keep = comp;
                    continue;
                }
                let fresh = self.members.len();
                report.counters.index_updates += comp.len();
                for &u in &comp {
                    self.assignment[u.index()] = fresh;
                    report.reassigned_users.push(u);
                }
                self.members.push(comp);
                report.splits += 1;
            }
            self.members[c] = keep;
        }
        report.counters.communities_touched = report.splits + usize::from(report.splits > 0);
        report
    }

    /// Connected components of the induced subgraph over `members`, the
    /// component containing `members[0]` first.
    fn components_of(&self, members: &[UserId]) -> Vec<Vec<UserId>> {
        let local: std::collections::HashMap<UserId, usize> =
            members.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); members.len()];
        for (a, b, _) in self.graph.induced_edges(members) {
            let (ia, ib) = (local[&a], local[&b]);
            adj[ia].push(ib);
            adj[ib].push(ia);
        }
        let mut seen = vec![false; members.len()];
        let mut out = Vec::new();
        for start in 0..members.len() {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            let mut comp = vec![start];
            let mut head = 0;
            while head < comp.len() {
                let u = comp[head];
                head += 1;
                for &v in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        comp.push(v);
                    }
                }
            }
            out.push(comp.into_iter().map(|i| members[i]).collect());
        }
        out
    }

    /// Admits `user` into the community of `partner` if it is new to the
    /// system.
    fn admit(&mut self, user: UserId, partner: UserId, report: &mut MaintenanceReport) {
        if user.index() < self.assignment.len() {
            return;
        }
        let home = if partner.index() < self.assignment.len() {
            self.assignment[partner.index()]
        } else {
            0
        };
        // Dense ids: fill any gap conservatively into community `home`.
        while self.assignment.len() <= user.index() {
            let id = UserId(self.assignment.len() as u32);
            self.assignment.push(home);
            self.members[home].push(id);
            report.reassigned_users.push(id);
            report.counters.index_updates += 1;
        }
        self.graph.grow_users(self.assignment.len());
    }

    fn merge(
        &mut self,
        ca: usize,
        cb: usize,
        report: &mut MaintenanceReport,
        touched: &mut [bool],
    ) {
        debug_assert_ne!(ca, cb);
        // Move the smaller community into the larger (fewer index updates).
        let (dst, src) = if self.members[ca].len() >= self.members[cb].len() {
            (ca, cb)
        } else {
            (cb, ca)
        };
        let moving = std::mem::take(&mut self.members[src]);
        report.counters.index_updates += moving.len();
        for &u in &moving {
            self.assignment[u.index()] = dst;
            report.reassigned_users.push(u);
        }
        self.members[dst].extend(moving);
        self.members[dst].sort_unstable();
        touched[dst] = true;
        touched[src] = true;
        report.merges.push((src, dst));
    }

    /// The split-flagged community with the lightest internal edge, if any
    /// flagged community has more than one member and at least one internal
    /// edge.
    fn splittable_community(&self, flags: &[bool]) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for (c, members) in self.members.iter().enumerate() {
            if !flags.get(c).copied().unwrap_or(false) || members.len() < 2 {
                continue;
            }
            let lightest = self
                .graph
                .induced_edges(members)
                .into_iter()
                .map(|(_, _, w)| w)
                .min();
            match (lightest, best) {
                (Some(w), None) => best = Some((w, c)),
                (Some(w), Some((bw, _))) if w < bw => best = Some((w, c)),
                _ => {}
            }
        }
        // Communities of ≥2 members with no internal edge split trivially.
        if best.is_none() {
            for (c, members) in self.members.iter().enumerate() {
                if flags.get(c).copied().unwrap_or(false) && members.len() >= 2 {
                    return Some(c);
                }
            }
        }
        best.map(|(_, c)| c)
    }

    /// Splits community `c` at its weakest link: cut the lightest edge of its
    /// maximum spanning forest; one side keeps index `c`, the other becomes a
    /// fresh community.
    fn split(&mut self, c: usize, report: &mut MaintenanceReport, touched: &mut Vec<bool>) {
        let members = self.members[c].clone();
        debug_assert!(members.len() >= 2);
        report.counters.partition_checks += members.len();

        // Maximum spanning forest of the induced subgraph, same deterministic
        // order as the extraction algorithm.
        let mut edges = self.graph.induced_edges(&members);
        edges.sort_by_key(|&(a, b, w)| (w, a, b));
        let mut local: std::collections::HashMap<UserId, usize> =
            members.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let mut parent: Vec<usize> = (0..members.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut msf: Vec<(UserId, UserId, u32)> = Vec::new();
        for &(a, b, w) in edges.iter().rev() {
            let (ra, rb) = (find(&mut parent, local[&a]), find(&mut parent, local[&b]));
            if ra != rb {
                parent[ra] = rb;
                msf.push((a, b, w));
            }
        }
        // Cut the lightest MSF edge; re-union the rest.
        msf.sort_by_key(|&(a, b, w)| (w, a, b));
        let mut parent: Vec<usize> = (0..members.len()).collect();
        for &(a, b, _) in msf.iter().skip(1) {
            let (ra, rb) = (find(&mut parent, local[&a]), find(&mut parent, local[&b]));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        // Component containing the first member keeps index c.
        let anchor = find(&mut parent, 0);
        let mut keep = Vec::new();
        let mut moved = Vec::new();
        for (i, &u) in members.iter().enumerate() {
            if find(&mut parent, i) == anchor {
                keep.push(u);
            } else {
                moved.push(u);
            }
        }
        debug_assert!(!moved.is_empty(), "split produced no second component");
        let fresh = self.members.len();
        report.counters.index_updates += moved.len();
        for &u in &moved {
            self.assignment[u.index()] = fresh;
            report.reassigned_users.push(u);
        }
        self.members[c] = keep;
        self.members.push(moved);
        touched.push(true);
        touched[c] = true;
        report.splits += 1;
        local.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    /// Two triangles (weights 5) joined by nothing; k = 2.
    fn two_triangles() -> SocialUpdatesMaintenance {
        let mut g = UserInterestGraph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge_weight(u(a), u(b), 5);
        }
        SocialUpdatesMaintenance::new(g, 2)
    }

    #[test]
    fn bootstrap_matches_extraction() {
        let m = two_triangles();
        let p = m.partition();
        assert_eq!(p.k(), 2);
        assert_eq!(p.communities()[0], vec![u(0), u(1), u(2)]);
        assert_eq!(m.lightest_intra_edge_weight(), Some(5));
    }

    #[test]
    fn weak_new_connection_changes_nothing() {
        let mut m = two_triangles();
        // Weight 1 ≤ w = 5: no merge.
        let r = m.apply_connections(&[(u(0), u(3), 1)]);
        assert!(r.merges.is_empty());
        assert_eq!(r.splits, 0);
        assert_eq!(m.partition().k(), 2);
        assert_eq!(r.counters.hash_mappings, 2);
    }

    #[test]
    fn strong_cross_connection_merges_then_splits_to_restore_k() {
        let mut m = two_triangles();
        // Weight 9 > w = 5 across communities: merge, then a split restores
        // k = 2.
        let r = m.apply_connections(&[(u(2), u(3), 9)]);
        assert_eq!(r.merges.len(), 1);
        assert_eq!(r.splits, 1);
        let p = m.partition();
        assert_eq!(p.k(), 2);
        assert!(p.is_valid());
        // The split cuts at the weakest link. The strong 9-edge must survive:
        // u2 and u3 stay together.
        assert_eq!(p.community_of(u(2)), p.community_of(u(3)));
    }

    #[test]
    fn new_user_is_admitted_to_partner_community() {
        let mut m = two_triangles();
        let r = m.apply_connections(&[(u(0), u(6), 1)]);
        let p = m.partition();
        assert_eq!(p.num_users(), 7);
        assert_eq!(p.community_of(u(6)), p.community_of(u(0)));
        assert!(r.reassigned_users.contains(&u(6)));
    }

    #[test]
    fn repeated_weak_connections_accumulate_into_merge() {
        let mut m = two_triangles();
        // Six +1 updates on the same cross edge: total weight 6 > 5 on the
        // sixth application.
        for _ in 0..5 {
            let r = m.apply_connections(&[(u(1), u(4), 1)]);
            assert!(r.merges.is_empty());
        }
        let r = m.apply_connections(&[(u(1), u(4), 1)]);
        assert_eq!(r.merges.len(), 1);
        assert_eq!(m.partition().k(), 2);
    }

    #[test]
    fn partition_invariant_after_many_random_updates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut m = two_triangles();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..40 {
            let batch: Vec<(UserId, UserId, u32)> = (0..rng.gen_range(1..6))
                .map(|_| {
                    let a = rng.gen_range(0..8u32);
                    let mut b = rng.gen_range(0..8u32);
                    if a == b {
                        b = (b + 1) % 8;
                    }
                    (u(a), u(b), rng.gen_range(1..8))
                })
                .collect();
            m.apply_connections(&batch);
            let p = m.partition();
            assert!(p.is_valid());
            assert!(p.k() >= 1);
        }
    }

    #[test]
    fn counters_track_operations() {
        let mut m = two_triangles();
        let r = m.apply_connections(&[(u(2), u(3), 9)]);
        assert_eq!(r.counters.hash_mappings, 2);
        assert!(r.counters.index_updates > 0);
        assert!(r.counters.partition_checks > 0);
        assert!(r.counters.communities_touched >= 2);
    }

    #[test]
    fn aging_splits_fragmented_communities() {
        // Two triangles joined by a weight-1 bridge form ONE community at
        // k=1; aging by 1 kills the bridge, so the community must split.
        let mut g = UserInterestGraph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge_weight(u(a), u(b), 5);
        }
        g.add_edge_weight(u(2), u(3), 1);
        let mut m = SocialUpdatesMaintenance::new(g, 1);
        assert_eq!(m.partition().k(), 1);
        let r = m.age_connections(1);
        assert_eq!(r.splits, 1);
        let p = m.partition();
        assert_eq!(p.k(), 2);
        assert!(p.is_valid());
        assert_ne!(p.community_of(u(0)), p.community_of(u(5)));
    }

    #[test]
    fn aging_below_edge_weights_is_a_noop() {
        let mut m = two_triangles();
        let r = m.age_connections(2); // all intra edges weigh 5
        assert_eq!(r.splits, 0);
        assert!(r.reassigned_users.is_empty());
        assert_eq!(m.partition().k(), 2);
        // Weights actually decayed.
        assert_eq!(m.lightest_intra_edge_weight(), Some(3));
    }

    #[test]
    fn aging_everything_away_leaves_singletons() {
        let mut m = two_triangles();
        let r = m.age_connections(10);
        assert_eq!(m.graph().num_edges(), 0);
        let p = m.partition();
        assert_eq!(p.k(), 6, "every user isolated");
        assert!(p.is_valid());
        assert!(r.splits >= 4);
    }

    #[test]
    fn internal_strong_edge_flags_split_but_k_holds() {
        let mut m = two_triangles();
        // Strengthen an internal edge well above w; community count is
        // already k so no split is needed.
        let r = m.apply_connections(&[(u(0), u(1), 10)]);
        assert_eq!(r.splits, 0);
        assert_eq!(m.partition().k(), 2);
    }
}
