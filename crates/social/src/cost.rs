//! The social-update cost model — Eq. 8.
//!
//! ```text
//! T_mc = |E|·c_h + Σᵢ (|g_ui|·t₁ + N_ui·t₂) + Σᵢ (|g_si|·(t₁+t₃) + N_si·t₂)
//! ```
//!
//! `c_h` prices a user-name → sub-community mapping, `t₁` an index update on
//! one sub-community element, `t₂` a descriptor update on one dimension, `t₃`
//! an element check during partitioning. The maintenance run supplies the
//! counts through [`crate::update::UpdateCounters`]; the caller supplies the
//! number of video descriptors affected (only it knows the video ↔ community
//! mapping).

use crate::update::UpdateCounters;

/// Calibratable unit costs of Eq. 8, in seconds per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of mapping a user name to its sub-community id (`c_h`).
    pub c_h: f64,
    /// Cost of an index update on one sub-community element (`t₁`).
    pub t1: f64,
    /// Cost of a descriptor update on one dimension (`t₂`).
    pub t2: f64,
    /// Cost of an element check in sub-community partition (`t₃`).
    pub t3: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Defaults in the order of magnitude of hash probes / vector writes
        // on commodity hardware; calibrate with measured timings if needed.
        Self {
            c_h: 2e-7,
            t1: 1e-7,
            t2: 5e-8,
            t3: 5e-8,
        }
    }
}

impl CostModel {
    /// Estimated maintenance time in seconds for one run's counters plus the
    /// number of video descriptor dimensions rewritten.
    pub fn estimate(&self, counters: &UpdateCounters, video_descriptor_updates: usize) -> f64 {
        counters.hash_mappings as f64 * self.c_h
            + counters.index_updates as f64 * self.t1
            + counters.partition_checks as f64 * self.t3
            + video_descriptor_updates as f64 * self.t2
    }

    /// The model is linear: estimates of split batches sum to the estimate
    /// of the merged batch. Exposed for tests and documentation.
    pub fn is_linear(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(h: usize, i: usize, p: usize) -> UpdateCounters {
        UpdateCounters {
            hash_mappings: h,
            index_updates: i,
            partition_checks: p,
            communities_touched: 0,
        }
    }

    #[test]
    fn zero_work_costs_nothing() {
        let m = CostModel::default();
        assert_eq!(m.estimate(&UpdateCounters::default(), 0), 0.0);
    }

    #[test]
    fn estimate_is_linear_in_counters() {
        let m = CostModel::default();
        let a = counters(10, 5, 3);
        let b = counters(20, 10, 6);
        let ea = m.estimate(&a, 7);
        let eb = m.estimate(&b, 14);
        assert!((eb - 2.0 * ea).abs() < 1e-15);
        assert!(m.is_linear());
    }

    #[test]
    fn each_term_contributes() {
        let m = CostModel {
            c_h: 1.0,
            t1: 10.0,
            t2: 100.0,
            t3: 1000.0,
        };
        let e = m.estimate(&counters(1, 1, 1), 1);
        assert_eq!(e, 1.0 + 10.0 + 100.0 + 1000.0);
    }

    #[test]
    fn batch_additivity() {
        // Eq. 8's linearity: processing two periods separately costs the
        // same as their combined counters.
        let m = CostModel::default();
        let p1 = counters(3, 2, 1);
        let p2 = counters(5, 0, 4);
        let combined = counters(8, 2, 5);
        let sum = m.estimate(&p1, 2) + m.estimate(&p2, 3);
        assert!((sum - m.estimate(&combined, 5)).abs() < 1e-15);
    }
}
