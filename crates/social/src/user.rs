//! Interned social user identities.
//!
//! Users appear in the system under their registered names (§4.2.3 hashes
//! user *names* with the shift-add-xor family), but every hot path works on
//! dense integer ids. [`UserRegistry`] interns names to dense [`UserId`]s and
//! keeps the reverse mapping.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of a registered social user.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

impl UserId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Bidirectional interner between user names and dense [`UserId`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserRegistry {
    by_name: HashMap<String, UserId>,
    names: Vec<String>,
}

impl UserRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &str) -> UserId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = UserId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing user by name.
    pub fn get(&self, name: &str) -> Option<UserId> {
        self.by_name.get(name).copied()
    }

    /// The name of a user.
    ///
    /// # Panics
    /// Panics if the id was not issued by this registry.
    pub fn name(&self, id: UserId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no users are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (UserId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut r = UserRegistry::new();
        let a = r.intern("alice");
        let b = r.intern("bob");
        let a2 = r.intern("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn lookup_and_reverse() {
        let mut r = UserRegistry::new();
        let id = r.intern("carol");
        assert_eq!(r.get("carol"), Some(id));
        assert_eq!(r.get("dave"), None);
        assert_eq!(r.name(id), "carol");
        assert_eq!(id.to_string(), "u0");
    }

    #[test]
    fn iter_in_id_order() {
        let mut r = UserRegistry::new();
        for n in ["x", "y", "z"] {
            r.intern(n);
        }
        let names: Vec<&str> = r.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
        assert!(!r.is_empty());
    }
}
