//! The user dictionary and social descriptor vectorisation (§4.2.2).
//!
//! "After extracting k sub-communities by graph partition, we map the whole
//! user space into a k-dimensional sub-community space. Users in different
//! sub-communities are stored in a dictionary … a social descriptor of n
//! users can be converted into a k-dimensional vector by simply counting the
//! number of users in each sub-community."

use crate::descriptor::SocialDescriptor;
use crate::extract::Partition;
use crate::user::UserId;
use serde::{Deserialize, Serialize};

/// Maps users to sub-community ids and vectorises social descriptors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserDictionary {
    /// `community[user.index()]` — the user's sub-community.
    community: Vec<usize>,
    /// Number of sub-communities `k`.
    k: usize,
}

impl UserDictionary {
    /// Builds the dictionary from an extracted partition.
    pub fn from_partition(partition: &Partition) -> Self {
        Self {
            community: partition.assignment().to_vec(),
            k: partition.k(),
        }
    }

    /// The sub-community of a user, or `None` for users outside the
    /// dictionary (joined after the last rebuild).
    pub fn community_of(&self, user: UserId) -> Option<usize> {
        self.community.get(user.index()).copied()
    }

    /// Reassigns a user's community (maintenance merge/split updates).
    ///
    /// # Panics
    /// Panics if the user is unknown or the community out of range.
    pub fn reassign(&mut self, user: UserId, community: usize) {
        assert!(community < self.k, "community {community} out of range");
        self.community[user.index()] = community;
    }

    /// Registers a new user directly into a community.
    pub fn push_user(&mut self, community: usize) -> UserId {
        assert!(community < self.k, "community {community} out of range");
        let id = UserId(self.community.len() as u32);
        self.community.push(community);
        id
    }

    /// Grows the number of communities (splits allocate fresh ids).
    pub fn grow_k(&mut self, k: usize) {
        assert!(k >= self.k, "cannot shrink k");
        self.k = k;
    }

    /// Number of sub-communities.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users in the dictionary.
    pub fn num_users(&self) -> usize {
        self.community.len()
    }

    /// Vectorises a social descriptor into the k-dimensional user histogram.
    /// Users unknown to the dictionary are skipped (they joined after the
    /// last rebuild and have no community yet).
    pub fn vectorize(&self, descriptor: &SocialDescriptor) -> Vec<u32> {
        let mut v = vec![0u32; self.k];
        for user in descriptor.iter() {
            if let Some(c) = self.community_of(user) {
                v[c] += 1;
            }
        }
        v
    }

    /// Increment a vector for one newly engaged user — the O(1) descriptor
    /// update path of the maintenance algorithm.
    pub fn vector_add_user(&self, vector: &mut [u32], user: UserId) {
        assert_eq!(vector.len(), self.k, "vector dimensionality mismatch");
        if let Some(c) = self.community_of(user) {
            vector[c] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_subcommunities;
    use crate::graph::UserInterestGraph;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    fn dict() -> UserDictionary {
        // Paper-example graph: communities {u0,u1} and {u2,u3,u4}.
        let mut g = UserInterestGraph::new(5);
        g.add_edge_weight(u(0), u(1), 2);
        g.add_edge_weight(u(0), u(3), 1);
        g.add_edge_weight(u(2), u(3), 2);
        g.add_edge_weight(u(2), u(4), 2);
        g.add_edge_weight(u(3), u(4), 2);
        UserDictionary::from_partition(&extract_subcommunities(&g, 2))
    }

    #[test]
    fn vectorize_counts_per_community() {
        let d = dict();
        assert_eq!(d.k(), 2);
        let desc = SocialDescriptor::from_users([u(0), u(1), u(4)]);
        assert_eq!(d.vectorize(&desc), vec![2, 1]);
    }

    #[test]
    fn unknown_users_are_skipped() {
        let d = dict();
        let desc = SocialDescriptor::from_users([u(0), u(99)]);
        assert_eq!(d.vectorize(&desc), vec![1, 0]);
        assert_eq!(d.community_of(u(99)), None);
    }

    #[test]
    fn incremental_add_matches_revectorize() {
        let d = dict();
        let mut desc = SocialDescriptor::from_users([u(2)]);
        let mut vec = d.vectorize(&desc);
        desc.insert(u(0));
        d.vector_add_user(&mut vec, u(0));
        assert_eq!(vec, d.vectorize(&desc));
    }

    #[test]
    fn reassign_and_grow() {
        let mut d = dict();
        d.grow_k(3);
        assert_eq!(d.k(), 3);
        d.reassign(u(4), 2);
        let desc = SocialDescriptor::from_users([u(3), u(4)]);
        assert_eq!(d.vectorize(&desc), vec![0, 1, 1]);
        let fresh = d.push_user(2);
        assert_eq!(d.community_of(fresh), Some(2));
        assert_eq!(d.num_users(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reassign_to_missing_community_rejected() {
        dict().reassign(u(0), 9);
    }
}
