//! Social descriptors and exact social relevance (Eq. 5).
//!
//! §4.2.1: "Given a video V, its social descriptor is constructed by
//! obtaining a set including its owner user and those users commenting it."
//! The social relevance of two videos is the Jaccard coefficient of their
//! descriptors.

use crate::user::UserId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The set of users (owner + commenters) attached to one video.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SocialDescriptor {
    users: BTreeSet<UserId>,
}

impl SocialDescriptor {
    /// Empty descriptor (a video nobody has engaged with yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Descriptor from a user collection; duplicates collapse.
    pub fn from_users(users: impl IntoIterator<Item = UserId>) -> Self {
        Self {
            users: users.into_iter().collect(),
        }
    }

    /// Adds a user (a new comment or the owner). Returns true if the user
    /// was not present before.
    pub fn insert(&mut self, user: UserId) -> bool {
        self.users.insert(user)
    }

    /// Whether `user` engaged with the video.
    pub fn contains(&self, user: UserId) -> bool {
        self.users.contains(&user)
    }

    /// Number of distinct users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the descriptor is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Iterates users in id order.
    pub fn iter(&self) -> impl Iterator<Item = UserId> + '_ {
        self.users.iter().copied()
    }

    /// Exact Jaccard relevance `sJ` to another descriptor (Eq. 5).
    pub fn jaccard(&self, other: &SocialDescriptor) -> f64 {
        social_jaccard(self, other)
    }
}

impl FromIterator<UserId> for SocialDescriptor {
    fn from_iter<T: IntoIterator<Item = UserId>>(iter: T) -> Self {
        Self::from_users(iter)
    }
}

/// `sJ(D_V, D_Q) = |D_V ∩ D_Q| / |D_V ∪ D_Q|` — Eq. 5. Two empty descriptors
/// score 0 (no shared evidence).
pub fn social_jaccard(a: &SocialDescriptor, b: &SocialDescriptor) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    // Sorted-merge intersection count over the BTreeSet iterators.
    let mut ia = a.iter();
    let mut ib = b.iter();
    let (mut xa, mut xb) = (ia.next(), ib.next());
    let mut inter = 0usize;
    while let (Some(u), Some(v)) = (xa, xb) {
        match u.cmp(&v) {
            std::cmp::Ordering::Less => xa = ia.next(),
            std::cmp::Ordering::Greater => xb = ib.next(),
            std::cmp::Ordering::Equal => {
                inter += 1;
                xa = ia.next();
                xb = ib.next();
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ids: &[u32]) -> SocialDescriptor {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn jaccard_identical_is_one() {
        let a = d(&[1, 2, 3]);
        assert_eq!(social_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_disjoint_is_zero() {
        assert_eq!(social_jaccard(&d(&[1, 2]), &d(&[3, 4])), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        // {1,2,3} ∩ {2,3,4,5} = 2; union = 5.
        let s = social_jaccard(&d(&[1, 2, 3]), &d(&[2, 3, 4, 5]));
        assert!((s - 0.4).abs() < 1e-12);
    }

    #[test]
    fn jaccard_symmetric() {
        let (a, b) = (d(&[1, 5, 9]), d(&[5, 7]));
        assert_eq!(social_jaccard(&a, &b), social_jaccard(&b, &a));
    }

    #[test]
    fn empty_descriptors() {
        let e = SocialDescriptor::new();
        assert!(e.is_empty());
        assert_eq!(social_jaccard(&e, &e), 0.0);
        assert_eq!(social_jaccard(&e, &d(&[1])), 0.0);
    }

    #[test]
    fn insert_and_duplicates() {
        let mut s = SocialDescriptor::new();
        assert!(s.insert(UserId(7)));
        assert!(!s.insert(UserId(7)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(UserId(7)));
        assert!(!s.contains(UserId(8)));
    }

    #[test]
    fn from_users_collapses_duplicates() {
        let s = SocialDescriptor::from_users([UserId(1), UserId(1), UserId(2)]);
        assert_eq!(s.len(), 2);
        let ids: Vec<UserId> = s.iter().collect();
        assert_eq!(ids, vec![UserId(1), UserId(2)]);
    }

    #[test]
    fn jaccard_bounds_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let a: SocialDescriptor = (0..rng.gen_range(1..30))
                .map(|_| UserId(rng.gen_range(0..40)))
                .collect();
            let b: SocialDescriptor = (0..rng.gen_range(1..30))
                .map(|_| UserId(rng.gen_range(0..40)))
                .collect();
            let s = social_jaccard(&a, &b);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
