//! `SubgraphExtraction` (Fig. 3): sub-community discovery by repeated
//! lightest-edge deletion.
//!
//! The paper's algorithm removes the globally lightest edge until the UIG
//! falls apart into `k` connected components, allowing communities of
//! different sizes. Two implementations are provided:
//!
//! * [`extract_subcommunities_literal`] — the algorithm exactly as printed:
//!   delete the lightest edge, re-check connectivity of its endpoints,
//!   repeat. `O(E·(V+E))`; kept as the executable specification.
//! * [`extract_subcommunities`] — the fast path via the maximum-spanning-
//!   forest duality: a removal changes the component count iff the edge
//!   belongs to the maximum spanning forest built in reverse removal order,
//!   so the final partition equals the MSF with its `k − p₀` lightest edges
//!   cut. `O(E log E)`.
//!
//! Both use the same deterministic `(weight, a, b)` ascending removal order,
//! so they agree *exactly*, ties included — pinned by tests here and by the
//! property suite in `tests/`.

use crate::graph::UserInterestGraph;
use crate::user::UserId;
use serde::{Deserialize, Serialize};

/// A partition of the user space into sub-communities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `assignment[user.index()]` = community index.
    assignment: Vec<usize>,
    /// Members per community, each sorted; communities ordered by smallest
    /// member id.
    communities: Vec<Vec<UserId>>,
}

impl Partition {
    /// Builds a partition from per-user community indices.
    ///
    /// # Panics
    /// Panics if `assignment` is empty or indices are not dense `0..k`.
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        assert!(!assignment.is_empty(), "empty partition");
        let k = assignment.iter().max().unwrap() + 1;
        let mut communities = vec![Vec::new(); k];
        for (i, &c) in assignment.iter().enumerate() {
            communities[c].push(UserId(i as u32));
        }
        assert!(
            communities.iter().all(|c| !c.is_empty()),
            "community indices must be dense"
        );
        // Canonical order: by smallest member; remap assignment accordingly.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&c| communities[c][0]);
        let mut remap = vec![0usize; k];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        let mut sorted_comms = vec![Vec::new(); k];
        for (new, &old) in order.iter().enumerate() {
            sorted_comms[new] = communities[old].clone();
        }
        let assignment = assignment.into_iter().map(|c| remap[c]).collect();
        Self {
            assignment,
            communities: sorted_comms,
        }
    }

    /// Number of communities.
    pub fn k(&self) -> usize {
        self.communities.len()
    }

    /// Number of users covered.
    pub fn num_users(&self) -> usize {
        self.assignment.len()
    }

    /// Community index of a user.
    ///
    /// # Panics
    /// Panics if the user is outside the partition's user space.
    pub fn community_of(&self, user: UserId) -> usize {
        self.assignment[user.index()]
    }

    /// Members of each community.
    pub fn communities(&self) -> &[Vec<UserId>] {
        &self.communities
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Checks the partition invariant: every user in exactly one community.
    pub fn is_valid(&self) -> bool {
        let mut seen = vec![false; self.assignment.len()];
        for (c, members) in self.communities.iter().enumerate() {
            for &u in members {
                if u.index() >= seen.len() || seen[u.index()] || self.assignment[u.index()] != c {
                    return false;
                }
                seen[u.index()] = true;
            }
        }
        seen.iter().all(|&s| s)
    }
}

/// Union-find over dense indices.
#[derive(Debug, Clone)]
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Fast `SubgraphExtraction`: maximum-spanning-forest duality.
///
/// Returns a partition with `max(k, p₀)` communities capped at the user
/// count, where `p₀` is the graph's initial component count (the algorithm
/// never merges pre-existing components).
pub fn extract_subcommunities(graph: &UserInterestGraph, k: usize) -> Partition {
    assert!(k >= 1, "need at least one sub-community");
    let n = graph.num_users();
    assert!(n > 0, "empty user space");
    let target = k.min(n);

    // Removal order: (weight, a, b) ascending. Kruskal processes the exact
    // reverse, so tie behaviour matches the literal algorithm.
    let ascending = graph.edges_sorted_ascending();
    let mut dsu = Dsu::new(n);
    let mut msf: Vec<(UserId, UserId, u32)> = Vec::new();
    for &(a, b, w) in ascending.iter().rev() {
        if dsu.union(a.index(), b.index()) {
            msf.push((a, b, w));
        }
    }
    let p0 = n - msf.len(); // components = nodes − forest edges
    let cuts = target.saturating_sub(p0);
    // Cut the `cuts` lightest MSF edges (ascending (w, a, b) order).
    msf.sort_by_key(|&(a, b, w)| (w, a, b));
    let mut dsu = Dsu::new(n);
    for &(a, b, _) in msf.iter().skip(cuts) {
        dsu.union(a.index(), b.index());
    }
    partition_from_dsu(&mut dsu, n)
}

/// The literal Fig. 3 algorithm: repeatedly delete the globally lightest
/// remaining edge; the component count grows when the deleted edge was a
/// bridge. Quadratic; use [`extract_subcommunities`] at scale.
pub fn extract_subcommunities_literal(graph: &UserInterestGraph, k: usize) -> Partition {
    assert!(k >= 1, "need at least one sub-community");
    let n = graph.num_users();
    assert!(n > 0, "empty user space");
    let target = k.min(n);

    let edges = graph.edges_sorted_ascending();
    // Line 1–2: current component count of the intact graph.
    let mut p = count_components(n, &edges);
    let mut next = 0usize;
    // Lines 3–8: remove lightest edges until p(G) reaches k.
    while p < target && next < edges.len() {
        let (a, b, _) = edges[next];
        next += 1; // edge `next-1` is now removed
        if !connected_without(n, &edges[next..], a, b) {
            p += 1;
        }
    }
    let mut dsu = Dsu::new(n);
    for &(a, b, _) in &edges[next..] {
        dsu.union(a.index(), b.index());
    }
    partition_from_dsu(&mut dsu, n)
}

fn count_components(n: usize, edges: &[(UserId, UserId, u32)]) -> usize {
    let mut dsu = Dsu::new(n);
    let mut comps = n;
    for &(a, b, _) in edges {
        if dsu.union(a.index(), b.index()) {
            comps -= 1;
        }
    }
    comps
}

fn connected_without(n: usize, remaining: &[(UserId, UserId, u32)], a: UserId, b: UserId) -> bool {
    let mut dsu = Dsu::new(n);
    for &(x, y, _) in remaining {
        dsu.union(x.index(), y.index());
    }
    dsu.find(a.index()) == dsu.find(b.index())
}

fn partition_from_dsu(dsu: &mut Dsu, n: usize) -> Partition {
    let mut root_to_comm: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut assignment = Vec::with_capacity(n);
    for i in 0..n {
        let r = dsu.find(i);
        let next = root_to_comm.len();
        let c = *root_to_comm.entry(r).or_insert(next);
        assignment.push(c);
    }
    Partition::from_assignment(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    /// Fig. 2's example graph.
    fn paper_graph() -> UserInterestGraph {
        let mut g = UserInterestGraph::new(5);
        g.add_edge_weight(u(0), u(1), 2);
        g.add_edge_weight(u(0), u(3), 1);
        g.add_edge_weight(u(2), u(3), 2);
        g.add_edge_weight(u(2), u(4), 2);
        g.add_edge_weight(u(3), u(4), 2);
        g
    }

    #[test]
    fn paper_graph_splits_at_lightest_bridge() {
        // k = 2 must cut the weight-1 bridge u1–u4, giving {u1,u2} and
        // {u3,u4,u5}.
        let p = extract_subcommunities(&paper_graph(), 2);
        assert_eq!(p.k(), 2);
        assert_eq!(p.communities()[0], vec![u(0), u(1)]);
        assert_eq!(p.communities()[1], vec![u(2), u(3), u(4)]);
        assert!(p.is_valid());
    }

    #[test]
    fn k_one_keeps_connected_graph_whole() {
        let p = extract_subcommunities(&paper_graph(), 1);
        assert_eq!(p.k(), 1);
        assert_eq!(p.communities()[0].len(), 5);
    }

    #[test]
    fn k_equal_users_gives_singletons() {
        let p = extract_subcommunities(&paper_graph(), 5);
        assert_eq!(p.k(), 5);
        assert!(p.communities().iter().all(|c| c.len() == 1));
    }

    #[test]
    fn oversized_k_caps_at_user_count() {
        let p = extract_subcommunities(&paper_graph(), 50);
        assert_eq!(p.k(), 5);
    }

    #[test]
    fn preexisting_components_are_respected() {
        // Two disconnected pairs: asking for k=2 requires no edge removal.
        let mut g = UserInterestGraph::new(4);
        g.add_edge_weight(u(0), u(1), 5);
        g.add_edge_weight(u(2), u(3), 5);
        let p = extract_subcommunities(&g, 2);
        assert_eq!(p.k(), 2);
        assert_eq!(p.communities()[0], vec![u(0), u(1)]);
        // k=1 cannot merge disconnected components: still 2.
        let p1 = extract_subcommunities(&g, 1);
        assert_eq!(p1.k(), 2);
    }

    #[test]
    fn literal_and_fast_agree_on_paper_graph() {
        for k in 1..=5 {
            let fast = extract_subcommunities(&paper_graph(), k);
            let lit = extract_subcommunities_literal(&paper_graph(), k);
            assert_eq!(fast, lit, "k = {k}");
        }
    }

    #[test]
    fn literal_and_fast_agree_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..30 {
            let n = rng.gen_range(2..20);
            let mut g = UserInterestGraph::new(n);
            for _ in 0..rng.gen_range(0..40) {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a != b {
                    // Small weight range to force plenty of ties.
                    g.add_edge_weight(u(a), u(b), rng.gen_range(1..4));
                }
            }
            for k in [1, 2, n / 2 + 1, n] {
                let fast = extract_subcommunities(&g, k.max(1));
                let lit = extract_subcommunities_literal(&g, k.max(1));
                assert_eq!(fast, lit, "round {round}, k {k}");
                assert!(fast.is_valid());
            }
        }
    }

    #[test]
    fn partition_accessors() {
        let p = extract_subcommunities(&paper_graph(), 2);
        assert_eq!(p.num_users(), 5);
        assert_eq!(p.community_of(u(0)), p.community_of(u(1)));
        assert_ne!(p.community_of(u(0)), p.community_of(u(4)));
        assert_eq!(p.assignment().len(), 5);
    }

    #[test]
    fn isolated_users_form_singletons() {
        let mut g = UserInterestGraph::new(3);
        g.add_edge_weight(u(0), u(1), 1);
        let p = extract_subcommunities(&g, 2);
        assert_eq!(p.k(), 2);
        assert_eq!(p.communities()[1], vec![u(2)]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_assignment_rejected() {
        Partition::from_assignment(vec![0, 2]);
    }
}
