//! Spectral clustering — the sub-community baseline of §4.2.2.
//!
//! The paper compares its `SubgraphExtraction` against "the best practice,
//! the spectral clustering" (von Luxburg [30]) and attributes the latter's
//! weaker Silhouette to "information loss in dimensionality reduction over
//! very large number of social users". We implement the normalised variant:
//!
//! 1. affinity `W` = UIG edge weights; degree `D`;
//! 2. `L_sym = I − D^{−1/2} W D^{−1/2}`;
//! 3. the `k` *smallest* eigenvectors of `L_sym`, found as the `k` largest of
//!    `A = 2I − L_sym` (spectrum of `L_sym` lies in `[0, 2]`) by orthogonal
//!    (block power) iteration — dense but dependency-free;
//! 4. row-normalise and k-means the embedding.

use crate::graph::UserInterestGraph;
use crate::kmeans::kmeans;

/// Default cap on the spectral embedding dimension. Computing one
/// eigenvector per cluster is infeasible "over very large number of social
/// users" (the paper's words for why spectral clustering loses), so practical
/// pipelines embed into a fixed low dimension and k-means there; when the
/// cluster count exceeds the embedding dimension, clusters collapse onto each
/// other — the information loss §4.2.2 describes.
pub const DEFAULT_EMBED_DIMS: usize = 8;

/// Spectral clustering of the UIG's users into `k` clusters, with the
/// practical embedding-dimension cap [`DEFAULT_EMBED_DIMS`].
///
/// Returns the per-user cluster assignment. Dense `O(n²)` memory — intended
/// for evaluation-sized samples (the paper runs it on a 2000-video sample),
/// not the full community.
pub fn spectral_clustering(graph: &UserInterestGraph, k: usize, seed: u64) -> Vec<usize> {
    spectral_clustering_with_dims(graph, k, DEFAULT_EMBED_DIMS.min(k), seed)
}

/// Spectral clustering with one eigenvector per cluster (no dimension cap) —
/// the textbook variant, exact but expensive at scale. Reported alongside
/// the capped variant in the silhouette comparison for transparency.
pub fn spectral_clustering_full(graph: &UserInterestGraph, k: usize, seed: u64) -> Vec<usize> {
    spectral_clustering_with_dims(graph, k, k, seed)
}

/// Spectral clustering with an explicit embedding dimension `dims ≤ k`.
pub fn spectral_clustering_with_dims(
    graph: &UserInterestGraph,
    k: usize,
    dims: usize,
    seed: u64,
) -> Vec<usize> {
    let n = graph.num_users();
    assert!(n > 0, "empty user space");
    assert!(k >= 1 && k <= n, "bad cluster count");
    assert!(
        dims >= 1 && dims <= k,
        "embedding dimension must be in 1..=k"
    );

    // Dense affinity and degree.
    let mut w = vec![0.0f64; n * n];
    let mut deg = vec![0.0f64; n];
    for (a, b, wt) in graph.edges() {
        let (i, j) = (a.index(), b.index());
        w[i * n + j] = wt as f64;
        w[j * n + i] = wt as f64;
        deg[i] += wt as f64;
        deg[j] += wt as f64;
    }
    // A = 2I − L_sym = I + D^{−1/2} W D^{−1/2}; isolated nodes keep A = I
    // rows (their eigenvector mass stays on themselves).
    let inv_sqrt: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        a[i * n + i] = 1.0;
        for j in 0..n {
            if w[i * n + j] != 0.0 {
                a[i * n + j] += inv_sqrt[i] * w[i * n + j] * inv_sqrt[j];
            }
        }
    }

    let vectors = top_eigenvectors(&a, n, dims, 200, seed);

    // Row-normalised spectral embedding.
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..dims).map(|c| vectors[c][i]).collect();
            let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                row.iter_mut().for_each(|x| *x /= norm);
            }
            row
        })
        .collect();
    kmeans(&points, k, 100, seed).assignment
}

/// Top-`k` eigenvectors of the symmetric matrix `a` (row-major `n × n`) by
/// orthogonal iteration with Gram–Schmidt re-orthonormalisation.
fn top_eigenvectors(a: &[f64], n: usize, k: usize, iters: usize, seed: u64) -> Vec<Vec<f64>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut basis: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    orthonormalise(&mut basis);
    let mut next = vec![vec![0.0; n]; k];
    for _ in 0..iters {
        for (dst, src) in next.iter_mut().zip(&basis) {
            mat_vec(a, n, src, dst);
        }
        std::mem::swap(&mut basis, &mut next);
        orthonormalise(&mut basis);
    }
    basis
}

fn mat_vec(a: &[f64], n: usize, x: &[f64], out: &mut [f64]) {
    for i in 0..n {
        let row = &a[i * n..(i + 1) * n];
        out[i] = row.iter().zip(x).map(|(r, v)| r * v).sum();
    }
}

fn orthonormalise(basis: &mut [Vec<f64>]) {
    for i in 0..basis.len() {
        for j in 0..i {
            let dot: f64 = basis[i].iter().zip(&basis[j]).map(|(a, b)| a * b).sum();
            let other = basis[j].clone();
            for (x, y) in basis[i].iter_mut().zip(&other) {
                *x -= dot * y;
            }
        }
        let norm = basis[i].iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            basis[i].iter_mut().for_each(|x| *x /= norm);
        } else {
            // Degenerate direction: reset to a unit vector on a fresh axis.
            let axis = i % basis[i].len();
            basis[i].iter_mut().for_each(|x| *x = 0.0);
            basis[i][axis] = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::UserId;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    /// Two cliques joined by one weak edge.
    fn two_cliques() -> UserInterestGraph {
        let mut g = UserInterestGraph::new(8);
        for a in 0..4u32 {
            for b in a + 1..4 {
                g.add_edge_weight(u(a), u(b), 10);
            }
        }
        for a in 4..8u32 {
            for b in a + 1..8 {
                g.add_edge_weight(u(a), u(b), 10);
            }
        }
        g.add_edge_weight(u(3), u(4), 1);
        g
    }

    #[test]
    fn splits_two_cliques() {
        let assign = spectral_clustering(&two_cliques(), 2, 1);
        assert_eq!(assign.len(), 8);
        let a = assign[0];
        for &x in &assign[..4] {
            assert_eq!(x, a, "first clique split");
        }
        for &x in &assign[4..8] {
            assert_ne!(x, a, "cliques merged");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = two_cliques();
        assert_eq!(spectral_clustering(&g, 2, 9), spectral_clustering(&g, 2, 9));
    }

    #[test]
    fn k_one_puts_everyone_together() {
        let assign = spectral_clustering(&two_cliques(), 1, 1);
        assert!(assign.iter().all(|&c| c == 0));
    }

    #[test]
    fn eigenvector_iteration_finds_dominant_direction() {
        // Symmetric 2×2 with eigenvalues 3 and 1; dominant eigenvector is
        // (1,1)/√2.
        let a = vec![2.0, 1.0, 1.0, 2.0];
        let v = top_eigenvectors(&a, 2, 1, 100, 3);
        let ratio = (v[0][0] / v[0][1]).abs();
        assert!((ratio - 1.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn orthonormal_basis_property() {
        let a = vec![
            4.0, 1.0, 0.0, //
            1.0, 3.0, 1.0, //
            0.0, 1.0, 2.0,
        ];
        let v = top_eigenvectors(&a, 3, 2, 200, 5);
        let dot: f64 = v[0].iter().zip(&v[1]).map(|(x, y)| x * y).sum();
        assert!(dot.abs() < 1e-8, "not orthogonal: {dot}");
        for vec in &v {
            let norm: f64 = vec.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-8);
        }
    }
}
