//! SAR approximate social relevance — Eq. 6.
//!
//! With both descriptors vectorised over the `k` sub-communities, the
//! approximation replaces the quadratic user-set Jaccard with the linear
//! histogram intersection-over-union:
//!
//! ```text
//! s̃J = Σᵢ min(d_Qi, d_Vi) / Σᵢ max(d_Qi, d_Vi)
//! ```

/// `s̃J` of two k-dimensional user histograms (Eq. 6). Two all-zero vectors
/// score 0.
///
/// # Panics
/// Panics if the vectors differ in dimensionality.
pub fn sar_similarity(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "histogram dimensionality mismatch");
    let mut num = 0u64;
    let mut den = 0u64;
    for (&x, &y) in a.iter().zip(b) {
        num += x.min(y) as u64;
        den += x.max(y) as u64;
    }
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// `s̃J` of two histograms in *sparse* form: sorted `(slot, count)` pairs
/// with strictly increasing slots and non-zero counts. Descriptors are
/// sparse in practice — a video engages a handful of users, the community
/// count `k` is 60+ — so the linear merge touches only the occupied slots of
/// either side instead of all `k` dimensions.
///
/// Slots absent from a vector are implicit zeros, so two sparse vectors of
/// different "dimensionality" compare exactly like their zero-padded dense
/// counterparts: `sar_similarity_sparse(sparsify(a), sparsify(b)) ==
/// sar_similarity(a, b)` for any equal-length dense `a`, `b`.
pub fn sar_similarity_sparse(a: &[(u32, u32)], b: &[(u32, u32)]) -> f64 {
    let mut num = 0u64;
    let mut den = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (sa, ca) = a[i];
        let (sb, cb) = b[j];
        match sa.cmp(&sb) {
            std::cmp::Ordering::Less => {
                den += ca as u64;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                den += cb as u64;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                num += ca.min(cb) as u64;
                den += ca.max(cb) as u64;
                i += 1;
                j += 1;
            }
        }
    }
    den += a[i..].iter().map(|&(_, c)| c as u64).sum::<u64>();
    den += b[j..].iter().map(|&(_, c)| c as u64).sum::<u64>();
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Converts a dense histogram into the sorted sparse `(slot, count)` form
/// [`sar_similarity_sparse`] consumes, dropping zero slots.
pub fn sparsify(dense: &[u32]) -> Vec<(u32, u32)> {
    dense
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(slot, &c)| (slot as u32, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{social_jaccard, SocialDescriptor};
    use crate::dictionary::UserDictionary;
    use crate::extract::Partition;
    use crate::user::UserId;

    #[test]
    fn identical_histograms_score_one() {
        assert_eq!(sar_similarity(&[3, 0, 2], &[3, 0, 2]), 1.0);
    }

    #[test]
    fn disjoint_support_scores_zero() {
        assert_eq!(sar_similarity(&[3, 0], &[0, 5]), 0.0);
    }

    #[test]
    fn empty_vectors_score_zero() {
        assert_eq!(sar_similarity(&[0, 0], &[0, 0]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // min = (1,2), max = (3,4) → 3/7.
        let s = sar_similarity(&[1, 4], &[3, 2]);
        assert!((s - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_and_bounded() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let k = rng.gen_range(1..12);
            let a: Vec<u32> = (0..k).map(|_| rng.gen_range(0..9)).collect();
            let b: Vec<u32> = (0..k).map(|_| rng.gen_range(0..9)).collect();
            let s = sar_similarity(&a, &b);
            assert!((0.0..=1.0).contains(&s));
            assert_eq!(s, sar_similarity(&b, &a));
        }
    }

    #[test]
    fn sar_upper_bounds_exact_jaccard() {
        // Aggregating users into communities can only merge distinctions:
        // s̃J ≥ sJ for descriptors vectorised under one dictionary.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            let n_users = rng.gen_range(4..30usize);
            let k = rng.gen_range(1..=n_users.min(6));
            let assignment: Vec<usize> = {
                let mut a: Vec<usize> = (0..n_users).map(|i| i % k).collect();
                a.sort_unstable();
                a
            };
            let partition = Partition::from_assignment(assignment);
            let dict = UserDictionary::from_partition(&partition);
            let da: SocialDescriptor = (0..rng.gen_range(1..15))
                .map(|_| UserId(rng.gen_range(0..n_users as u32)))
                .collect();
            let db: SocialDescriptor = (0..rng.gen_range(1..15))
                .map(|_| UserId(rng.gen_range(0..n_users as u32)))
                .collect();
            let exact = social_jaccard(&da, &db);
            let approx = sar_similarity(&dict.vectorize(&da), &dict.vectorize(&db));
            assert!(approx >= exact - 1e-12, "SAR {approx} below exact {exact}");
        }
    }

    #[test]
    fn sar_exact_when_communities_are_singletons() {
        // k = number of users: the histogram *is* the indicator vector, so
        // s̃J = sJ exactly.
        let n_users = 8;
        let partition = Partition::from_assignment((0..n_users).collect());
        let dict = UserDictionary::from_partition(&partition);
        let da = SocialDescriptor::from_users([UserId(0), UserId(1), UserId(2)]);
        let db = SocialDescriptor::from_users([UserId(2), UserId(3)]);
        let exact = social_jaccard(&da, &db);
        let approx = sar_similarity(&dict.vectorize(&da), &dict.vectorize(&db));
        assert!((approx - exact).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mismatched_dims_rejected() {
        sar_similarity(&[1], &[1, 2]);
    }

    #[test]
    fn sparsify_drops_zero_slots_and_keeps_order() {
        assert_eq!(sparsify(&[0, 3, 0, 1]), vec![(1, 3), (3, 1)]);
        assert!(sparsify(&[0, 0]).is_empty());
    }

    #[test]
    fn sparse_matches_dense_on_random_histograms() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..200 {
            let k = rng.gen_range(1..20);
            // Mostly-zero histograms, like real descriptor vectors.
            let a: Vec<u32> = (0..k)
                .map(|_| {
                    if rng.gen_range(0..4) == 0 {
                        rng.gen_range(1..9)
                    } else {
                        0
                    }
                })
                .collect();
            let b: Vec<u32> = (0..k)
                .map(|_| {
                    if rng.gen_range(0..4) == 0 {
                        rng.gen_range(1..9)
                    } else {
                        0
                    }
                })
                .collect();
            let dense = sar_similarity(&a, &b);
            let sparse = sar_similarity_sparse(&sparsify(&a), &sparsify(&b));
            assert_eq!(dense, sparse, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn sparse_handles_implicit_trailing_zeros() {
        // Dense would panic on the length mismatch; sparse treats missing
        // slots as zeros — the property that lets community splits skip the
        // zero-extension pass entirely.
        let a = sparsify(&[2, 0, 1]);
        let b = sparsify(&[2, 0, 1, 0, 0]);
        assert_eq!(sar_similarity_sparse(&a, &b), 1.0);
        let c = sparsify(&[0, 0, 0, 0, 4]);
        let s = sar_similarity_sparse(&a, &c);
        assert_eq!(s, 0.0);
        assert!(sar_similarity_sparse(&[], &[]) == 0.0);
    }
}
