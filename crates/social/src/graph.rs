//! The user interest graph (UIG).
//!
//! §4.2.2: nodes are the social users of a collection; "the weight of an edge
//! linking two users denotes the number of common interested videos shared by
//! them". The graph is built incrementally from (video → engaged users)
//! records, so the maintenance algorithm of Fig. 5 can keep extending it with
//! new comment connections.

use crate::user::UserId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Canonical (small, large) ordering of an undirected edge key.
#[inline]
fn key(a: UserId, b: UserId) -> (UserId, UserId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Weighted undirected user interest graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserInterestGraph {
    /// Number of user slots (ids `0..num_users` are valid nodes; isolated
    /// users are legitimate singleton components).
    num_users: usize,
    edges: HashMap<(UserId, UserId), u32>,
}

impl UserInterestGraph {
    /// Empty graph over `num_users` user slots.
    pub fn new(num_users: usize) -> Self {
        Self {
            num_users,
            edges: HashMap::new(),
        }
    }

    /// Builds the UIG from video engagement records: every pair of users who
    /// both engaged with one video gains +1 edge weight.
    pub fn from_videos<'a>(
        num_users: usize,
        videos: impl IntoIterator<Item = &'a [UserId]>,
    ) -> Self {
        let mut g = Self::new(num_users);
        for users in videos {
            g.add_video(users);
        }
        g
    }

    /// Registers one video's engaged users: all pairs gain +1.
    pub fn add_video(&mut self, users: &[UserId]) {
        for (i, &a) in users.iter().enumerate() {
            debug_assert!(a.index() < self.num_users, "user {a} out of range");
            for &b in &users[i + 1..] {
                if a != b {
                    self.add_edge_weight(a, b, 1);
                }
            }
        }
    }

    /// Adds `w` to the weight of edge `(a, b)` (creating it if absent).
    pub fn add_edge_weight(&mut self, a: UserId, b: UserId, w: u32) {
        assert!(a != b, "self-loops are not part of the UIG");
        assert!(
            a.index() < self.num_users && b.index() < self.num_users,
            "edge endpoint out of range"
        );
        *self.edges.entry(key(a, b)).or_insert(0) += w;
    }

    /// Ages every connection by `amount`: weights decrease, edges reaching
    /// zero disappear (§4.2.4: "as the interests of people may change over
    /// time … existing user connections may become invalid"). Returns the
    /// number of edges removed.
    pub fn decay_all(&mut self, amount: u32) -> usize {
        let before = self.edges.len();
        self.edges.retain(|_, w| {
            *w = w.saturating_sub(amount);
            *w > 0
        });
        before - self.edges.len()
    }

    /// Grows the node slot count (new users joined the community).
    pub fn grow_users(&mut self, num_users: usize) {
        assert!(num_users >= self.num_users, "cannot shrink the user space");
        self.num_users = num_users;
    }

    /// Number of user slots.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weight of edge `(a, b)`, 0 if absent.
    pub fn weight(&self, a: UserId, b: UserId) -> u32 {
        self.edges.get(&key(a, b)).copied().unwrap_or(0)
    }

    /// Iterates `(a, b, weight)` over all edges (unspecified order).
    pub fn edges(&self) -> impl Iterator<Item = (UserId, UserId, u32)> + '_ {
        self.edges.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// All edges sorted by `(weight, a, b)` ascending — the deterministic
    /// removal order of the extraction algorithms.
    pub fn edges_sorted_ascending(&self) -> Vec<(UserId, UserId, u32)> {
        let mut v: Vec<_> = self.edges().collect();
        v.sort_by_key(|&(a, b, w)| (w, a, b));
        v
    }

    /// Adjacency lists `user → [(neighbour, weight)]`.
    pub fn adjacency(&self) -> Vec<Vec<(UserId, u32)>> {
        let mut adj = vec![Vec::new(); self.num_users];
        for (&(a, b), &w) in &self.edges {
            adj[a.index()].push((b, w));
            adj[b.index()].push((a, w));
        }
        adj
    }

    /// Connected components (each a sorted user list), including singleton
    /// isolated users. Deterministic order: by smallest member id.
    pub fn components(&self) -> Vec<Vec<UserId>> {
        let adj = self.adjacency();
        let mut seen = vec![false; self.num_users];
        let mut comps = Vec::new();
        for start in 0..self.num_users {
            if seen[start] {
                continue;
            }
            let mut comp = vec![UserId(start as u32)];
            seen[start] = true;
            let mut head = 0;
            while head < comp.len() {
                let u = comp[head];
                head += 1;
                for &(v, _) in &adj[u.index()] {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        comp.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// The subgraph induced by `users` (edges with both endpoints inside).
    pub fn induced_edges(&self, users: &[UserId]) -> Vec<(UserId, UserId, u32)> {
        let inside: std::collections::HashSet<UserId> = users.iter().copied().collect();
        self.edges()
            .filter(|(a, b, _)| inside.contains(a) && inside.contains(b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    /// The running example of Fig. 2: 8 videos, 5 users.
    pub(crate) fn paper_example() -> UserInterestGraph {
        // (u1,<V1,V3,V8>) (u2,<V3,V8>) (u3,<V2,V4,V5>) (u4,<V1,V4,V5>)
        // (u5,<V4,V5,V6,V7>)  — users 0-indexed here.
        let videos: Vec<Vec<UserId>> = vec![
            vec![u(0), u(3)],       // V1: u1, u4
            vec![u(2)],             // V2: u3
            vec![u(0), u(1)],       // V3: u1, u2
            vec![u(2), u(3), u(4)], // V4: u3, u4, u5
            vec![u(2), u(3), u(4)], // V5
            vec![u(4)],             // V6
            vec![u(4)],             // V7
            vec![u(0), u(1)],       // V8: u1, u2
        ];
        UserInterestGraph::from_videos(5, videos.iter().map(|v| v.as_slice()))
    }

    #[test]
    fn paper_example_weights_match_figure_2() {
        let g = paper_example();
        assert_eq!(g.weight(u(0), u(1)), 2); // u1–u2 share V3, V8
        assert_eq!(g.weight(u(0), u(3)), 1); // u1–u4 share V1
        assert_eq!(g.weight(u(2), u(3)), 2); // u3–u4 share V4, V5
        assert_eq!(g.weight(u(2), u(4)), 2); // u3–u5 share V4, V5
        assert_eq!(g.weight(u(3), u(4)), 2); // u4–u5 share V4, V5
        assert_eq!(g.weight(u(1), u(4)), 0);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn components_and_isolated_users() {
        let mut g = UserInterestGraph::new(4);
        g.add_edge_weight(u(0), u(1), 1);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![u(0), u(1)]);
        assert_eq!(comps[1], vec![u(2)]);
        assert_eq!(comps[2], vec![u(3)]);
    }

    #[test]
    fn add_video_is_pairwise() {
        let mut g = UserInterestGraph::new(3);
        g.add_video(&[u(0), u(1), u(2)]);
        assert_eq!(g.num_edges(), 3);
        g.add_video(&[u(0), u(1)]);
        assert_eq!(g.weight(u(0), u(1)), 2);
        assert_eq!(g.weight(u(0), u(2)), 1);
    }

    #[test]
    fn sorted_edges_ascend() {
        let g = paper_example();
        let e = g.edges_sorted_ascending();
        for w in e.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        assert_eq!(e[0].2, 1);
    }

    #[test]
    fn induced_edges_filter() {
        let g = paper_example();
        let sub = g.induced_edges(&[u(2), u(3), u(4)]);
        assert_eq!(sub.len(), 3);
        assert!(sub.iter().all(|&(_, _, w)| w == 2));
    }

    #[test]
    fn decay_all_ages_and_prunes() {
        let mut g = paper_example();
        let removed = g.decay_all(1);
        // The single weight-1 edge (u1–u4) disappears; weight-2 edges drop
        // to 1.
        assert_eq!(removed, 1);
        assert_eq!(g.weight(u(0), u(3)), 0);
        assert_eq!(g.weight(u(0), u(1)), 1);
        assert_eq!(g.decay_all(5), 4, "everything else dies");
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn grow_users_extends_slots() {
        let mut g = UserInterestGraph::new(2);
        g.grow_users(5);
        assert_eq!(g.num_users(), 5);
        g.add_edge_weight(u(3), u(4), 2);
        assert_eq!(g.weight(u(3), u(4)), 2);
        assert_eq!(g.components().len(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        UserInterestGraph::new(2).add_edge_weight(u(1), u(1), 1);
    }
}
