//! Seeded k-means with k-means++ initialisation.
//!
//! The final step of the spectral-clustering baseline (§4.2.2 / von Luxburg
//! [30]): cluster the rows of the eigenvector matrix. Kept generic over
//! dense points so the evaluation harness can reuse it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per point.
    pub assignment: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on `points` (row-major, equal-length rows).
///
/// k-means++ seeding, Lloyd iterations, at most `max_iter` rounds, seeded for
/// determinism. Empty clusters are re-seeded with the point farthest from its
/// centroid.
///
/// # Panics
/// Panics if `points` is empty, rows differ in length, or `k` is zero or
/// exceeds the point count.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> KMeansResult {
    assert!(!points.is_empty(), "no points to cluster");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");
    assert!(k >= 1 && k <= points.len(), "bad cluster count");
    let mut rng = StdRng::seed_from_u64(seed);

    // --- k-means++ seeding ---
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, centroids.last().unwrap()));
        }
    }

    // --- Lloyd iterations ---
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| sq_dist(p, &centroids[a]).total_cmp(&sq_dist(p, &centroids[b])))
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &v) in sums[assignment[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the point farthest from its
                // current centroid.
                let far = (0..points.len())
                    .max_by(|&a, &b| {
                        sq_dist(&points[a], &centroids[assignment[a]])
                            .total_cmp(&sq_dist(&points[b], &centroids[assignment[b]]))
                    })
                    .expect("non-empty points");
                centroids[c] = points[far].clone();
                changed = true;
            } else {
                for (cv, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cv = s / counts[c] as f64;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &c)| sq_dist(p, &centroids[c]))
        .sum();
    KMeansResult {
        assignment,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Two tight blobs around (0,0) and (10,10).
        let mut pts = Vec::new();
        for i in 0..10 {
            let o = i as f64 * 0.01;
            pts.push(vec![o, -o]);
            pts.push(vec![10.0 + o, 10.0 - o]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = blobs();
        let r = kmeans(&pts, 2, 50, 1);
        // Even indices are blob A, odd blob B.
        let a = r.assignment[0];
        for (i, &c) in r.assignment.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(c, a);
            } else {
                assert_ne!(c, a);
            }
        }
        assert!(r.inertia < 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = blobs();
        let r1 = kmeans(&pts, 2, 50, 7);
        let r2 = kmeans(&pts, 2, 50, 7);
        assert_eq!(r1.assignment, r2.assignment);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0], vec![5.0], vec![9.0]];
        let r = kmeans(&pts, 3, 20, 3);
        assert!(r.inertia < 1e-18);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let r = kmeans(&pts, 1, 20, 5);
        assert!((r.centroids[0][0] - 1.0).abs() < 1e-12);
        assert!((r.centroids[0][1] - 2.0).abs() < 1e-12);
        assert!(r.iterations >= 1);
    }

    #[test]
    fn duplicate_points_are_fine() {
        let pts = vec![vec![1.0]; 6];
        let r = kmeans(&pts, 2, 20, 9);
        assert_eq!(r.assignment.len(), 6);
        assert!(r.inertia < 1e-18);
    }

    #[test]
    #[should_panic(expected = "bad cluster count")]
    fn k_larger_than_n_rejected() {
        kmeans(&[vec![0.0]], 2, 10, 0);
    }
}
