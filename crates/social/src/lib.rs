//! # viderec-social
//!
//! The social half of the paper: social descriptors and exact Jaccard
//! relevance (Eq. 5), the user interest graph, the sub-community
//! approximation scheme **SAR** (§4.2.2), the spectral-clustering baseline it
//! is evaluated against, and the social-updates maintenance algorithm of
//! Fig. 5 with its cost model (Eq. 8).
//!
//! * [`user`] — interned user identities (names are kept because the
//!   chained-hash optimisation of `viderec-index` hashes user *names*).
//! * [`descriptor`] — per-video social descriptors `D_V = {id_Vi}` and exact
//!   `sJ` (Eq. 5).
//! * [`graph`] — the weighted user interest graph (UIG): edge weight =
//!   number of videos two users both engaged with.
//! * [`extract`] — `SubgraphExtraction` (Fig. 3): repeated lightest-edge
//!   deletion until `k` connected components remain; implemented both
//!   literally and via the maximum-spanning-forest duality (the fast path),
//!   with tests pinning their agreement.
//! * [`spectral`] / [`kmeans`] — the spectral-clustering baseline of the
//!   Silhouette comparison in §4.2.2.
//! * [`silhouette`] — the Silhouette Coefficient metric.
//! * [`dictionary`] — the user → sub-community dictionary and social
//!   descriptor vectorisation.
//! * [`approx`] — the SAR approximate relevance `s̃J` (Eq. 6).
//! * [`update`] — `SocialUpdatesMaintenance` (Fig. 5): incremental
//!   merge/split of sub-communities under new connections.
//! * [`cost`] — the update cost model of Eq. 8.

#![warn(missing_docs)]

pub mod approx;
pub mod cost;
pub mod descriptor;
pub mod dictionary;
pub mod extract;
pub mod graph;
pub mod kmeans;
pub mod silhouette;
pub mod spectral;
pub mod update;
pub mod user;

pub use approx::{sar_similarity, sar_similarity_sparse, sparsify};
pub use descriptor::{social_jaccard, SocialDescriptor};
pub use dictionary::UserDictionary;
pub use extract::{extract_subcommunities, extract_subcommunities_literal, Partition};
pub use graph::UserInterestGraph;
pub use silhouette::silhouette_coefficient;
pub use spectral::spectral_clustering;
pub use update::{MaintenanceReport, SocialUpdatesMaintenance};
pub use user::{UserId, UserRegistry};
