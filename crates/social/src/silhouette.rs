//! The Silhouette Coefficient (Han, *Data Mining* [10]) — the clustering
//! quality metric of §4.2.2's comparison between `SubgraphExtraction`
//! (average 0.498 in the paper) and spectral clustering (0.242).
//!
//! For point `i` with mean intra-cluster distance `a(i)` and smallest mean
//! distance to another cluster `b(i)`:
//!
//! ```text
//! s(i) = (b(i) − a(i)) / max(a(i), b(i))        s(i) ∈ [−1, 1]
//! ```
//!
//! Singleton clusters contribute `s(i) = 0` by convention.

/// Average silhouette over all points, generic over the pairwise distance.
///
/// `assignment[i]` is point `i`'s cluster. Returns 0 when every point is in
/// one cluster (no between-cluster structure to score).
///
/// # Panics
/// Panics if `assignment` is empty.
pub fn silhouette_coefficient(
    assignment: &[usize],
    mut dist: impl FnMut(usize, usize) -> f64,
) -> f64 {
    let n = assignment.len();
    assert!(n > 0, "no points");
    let k = assignment.iter().max().unwrap() + 1;
    if k == 1 {
        return 0.0;
    }
    let mut sizes = vec![0usize; k];
    for &c in assignment {
        sizes[c] += 1;
    }

    let mut total = 0.0;
    for i in 0..n {
        let ci = assignment[i];
        if sizes[ci] <= 1 {
            continue; // singleton: s(i) = 0
        }
        // Mean distance to each cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if i != j {
                sums[assignment[j]] += dist(i, j);
            }
        }
        let a = sums[ci] / (sizes[ci] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != ci && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euclid(points: &[(f64, f64)]) -> impl FnMut(usize, usize) -> f64 + '_ {
        move |i, j| {
            let (x1, y1) = points[i];
            let (x2, y2) = points[j];
            ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
        }
    }

    #[test]
    fn perfect_separation_scores_near_one() {
        let pts = [(0.0, 0.0), (0.1, 0.0), (100.0, 0.0), (100.1, 0.0)];
        let assign = [0, 0, 1, 1];
        let s = silhouette_coefficient(&assign, euclid(&pts));
        assert!(s > 0.99, "s = {s}");
    }

    #[test]
    fn wrong_clustering_scores_negative() {
        // Pair the far points together: each point's own cluster is farther
        // than its true neighbour's cluster.
        let pts = [(0.0, 0.0), (0.1, 0.0), (100.0, 0.0), (100.1, 0.0)];
        let assign = [0, 1, 0, 1];
        let s = silhouette_coefficient(&assign, euclid(&pts));
        assert!(s < 0.0, "s = {s}");
    }

    #[test]
    fn single_cluster_scores_zero() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)];
        assert_eq!(silhouette_coefficient(&[0, 0, 0], euclid(&pts)), 0.0);
    }

    #[test]
    fn singletons_contribute_zero() {
        let pts = [(0.0, 0.0), (0.1, 0.0), (50.0, 0.0)];
        let assign = [0, 0, 1];
        let s = silhouette_coefficient(&assign, euclid(&pts));
        // Third point is a singleton; the first two are well-placed.
        assert!(s > 0.6 && s < 1.0, "s = {s}");
    }

    #[test]
    fn bounded_in_minus_one_one() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.gen_range(2..30);
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect();
            let k = rng.gen_range(1..=n.min(5));
            let assign: Vec<usize> = {
                // Ensure indices are dense 0..k.
                let mut a: Vec<usize> = (0..n).map(|i| i % k).collect();
                a.sort_unstable();
                a
            };
            let s = silhouette_coefficient(&assign, euclid(&pts));
            assert!((-1.0..=1.0).contains(&s), "s = {s}");
        }
    }
}
