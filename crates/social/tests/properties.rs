//! Property tests for the social substrate: extraction equivalence, SAR
//! soundness, and maintenance invariants.

use proptest::prelude::*;
use viderec_social::{
    extract_subcommunities, extract_subcommunities_literal, sar_similarity, social_jaccard,
    SocialDescriptor, SocialUpdatesMaintenance, UserDictionary, UserId, UserInterestGraph,
};

/// A random weighted graph as an edge list over `n` users.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, u32)>)> {
    (2..16usize).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32, 1..5u32), 0..40);
        (Just(n), edges)
    })
}

fn build_graph(n: usize, edges: &[(u32, u32, u32)]) -> UserInterestGraph {
    let mut g = UserInterestGraph::new(n);
    for &(a, b, w) in edges {
        if a != b {
            g.add_edge_weight(UserId(a), UserId(b), w);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fast MSF-duality extraction equals the literal Fig. 3 algorithm,
    /// ties and all.
    #[test]
    fn extraction_fast_equals_literal((n, edges) in graph_strategy(), k in 1..10usize) {
        let g = build_graph(n, &edges);
        let fast = extract_subcommunities(&g, k);
        let literal = extract_subcommunities_literal(&g, k);
        prop_assert_eq!(&fast, &literal);
        prop_assert!(fast.is_valid());
    }

    /// Requesting more communities never yields fewer, and community count
    /// never exceeds the user count.
    #[test]
    fn extraction_monotone_in_k((n, edges) in graph_strategy()) {
        let g = build_graph(n, &edges);
        let mut prev = 0;
        for k in 1..=n {
            let p = extract_subcommunities(&g, k);
            prop_assert!(p.k() >= prev);
            prop_assert!(p.k() <= n);
            prev = p.k();
        }
    }

    /// Exact Jaccard is bounded and symmetric; SAR under any dictionary
    /// upper-bounds it and coincides for singleton communities.
    #[test]
    fn sar_soundness(
        users_a in prop::collection::vec(0..30u32, 1..20),
        users_b in prop::collection::vec(0..30u32, 1..20),
        k in 1..6usize,
    ) {
        let a: SocialDescriptor = users_a.iter().map(|&u| UserId(u)).collect();
        let b: SocialDescriptor = users_b.iter().map(|&u| UserId(u)).collect();
        let exact = social_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&exact));
        prop_assert!((exact - social_jaccard(&b, &a)).abs() < 1e-12);

        // Coarse dictionary: user u → community u % k.
        let assignment: Vec<usize> = {
            let mut v: Vec<usize> = (0..30).map(|u| u % k).collect();
            v.sort_unstable();
            v
        };
        let dict = UserDictionary::from_partition(
            &viderec_social::Partition::from_assignment(assignment),
        );
        // Sorting destroyed the u → u % k mapping; rebuild an order-true one:
        let dict2 = {
            let mut d = dict;
            for u in 0..30u32 {
                d.reassign(UserId(u), (u as usize) % k);
            }
            d
        };
        let approx = sar_similarity(&dict2.vectorize(&a), &dict2.vectorize(&b));
        prop_assert!(approx >= exact - 1e-12, "SAR {} < exact {}", approx, exact);

        // Singleton communities: SAR is exact.
        let singleton = UserDictionary::from_partition(
            &viderec_social::Partition::from_assignment((0..30).collect()),
        );
        let s = sar_similarity(&singleton.vectorize(&a), &singleton.vectorize(&b));
        prop_assert!((s - exact).abs() < 1e-12);
    }

    /// Maintenance keeps a valid partition under arbitrary update batches
    /// and never loses users.
    #[test]
    fn maintenance_invariants(
        (n, edges) in graph_strategy(),
        batches in prop::collection::vec(
            prop::collection::vec((0..20u32, 0..20u32, 1..6u32), 1..8),
            1..5,
        ),
        k in 1..6usize,
    ) {
        let g = build_graph(n, &edges);
        let mut m = SocialUpdatesMaintenance::new(g, k);
        let users_before = m.partition().num_users();
        prop_assert!(users_before == n);
        for batch in &batches {
            let conns: Vec<(UserId, UserId, u32)> = batch
                .iter()
                .filter(|&&(a, b, _)| a != b)
                .map(|&(a, b, w)| (UserId(a), UserId(b), w))
                .collect();
            m.apply_connections(&conns);
            let p = m.partition();
            prop_assert!(p.is_valid());
            prop_assert!(p.num_users() >= users_before);
            prop_assert!(p.k() >= 1);
        }
    }
}
