//! `SnapshotCell` / `CachedSnapshot` unit tests (moved out of
//! `src/snapshot.rs` so the source file can be compiled verbatim into
//! `viderec-check`'s instrumented model build). The stress variant here
//! relies on real OS scheduling; the *exhaustive* interleaving versions live
//! in `crates/check/tests/model_snapshot.rs`.

use std::sync::Arc;
use viderec_serve::{CachedSnapshot, SnapshotCell};

#[test]
fn publish_bumps_epoch_and_swaps() {
    let cell = SnapshotCell::new(Arc::new(10u32));
    assert_eq!(cell.epoch(), 1);
    let mut cached = CachedSnapshot::new(&cell);
    assert_eq!(*cached.get(&cell), 10);
    assert_eq!(cell.publish(Arc::new(20)), 2);
    assert_eq!(cell.epoch(), 2);
    assert_eq!(*cached.get(&cell), 20);
    assert_eq!(cached.epoch(), 2);
}

#[test]
fn age_resets_on_publish() {
    let cell = SnapshotCell::new(Arc::new(0u32));
    std::thread::sleep(std::time::Duration::from_millis(5));
    let before = cell.age_micros();
    assert!(before >= 5_000, "age never advanced: {before}");
    cell.publish(Arc::new(1));
    let after = cell.age_micros();
    assert!(after < before, "publish did not reset the age: {after}");
}

#[test]
fn cached_reader_pins_across_publishes_until_refreshed() {
    let cell = SnapshotCell::new(Arc::new(1u32));
    let (pinned, e) = cell.load();
    assert_eq!(e, 1);
    cell.publish(Arc::new(2));
    // The old snapshot survives as long as the reader pins it.
    assert_eq!(*pinned, 1);
    assert_eq!(*cell.load().0, 2);
}

#[test]
fn concurrent_readers_always_see_a_complete_state() {
    let cell = Arc::new(SnapshotCell::new(Arc::new(vec![0u64; 8])));
    crossbeam::thread::scope(|s| {
        let writer = {
            let cell = Arc::clone(&cell);
            s.spawn(move |_| {
                for v in 1..=50u64 {
                    cell.publish(Arc::new(vec![v; 8]));
                }
            })
        };
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            s.spawn(move |_| {
                let mut cached = CachedSnapshot::new(&cell);
                for _ in 0..200 {
                    let snap = cached.get(&cell);
                    // Every published vector is uniform: a torn state
                    // would mix values.
                    assert!(snap.windows(2).all(|w| w[0] == w[1]));
                }
            });
        }
        writer.join().unwrap();
    })
    .unwrap();
    assert_eq!(cell.epoch(), 51);
}
