//! Property tests for the update-pipeline wire codec: arbitrary events —
//! including ±0.0, subnormal and maximally awkward finite `f64` series
//! values — round-trip **bit-exactly**, and non-finite values are rejected
//! with an error, never a panic. The same properties cover the WAL payload
//! codec in `serve::durability`, which reuses these wire lines as its record
//! payloads.

use proptest::prelude::*;
use viderec_core::{CorpusVideo, SocialUpdate, UpdateEvent};
use viderec_serve::durability::{decode_event, encode_event};
use viderec_serve::wire::{
    decode_series, encode_age, encode_comment, encode_ingest, encode_series, parse_update_body,
};
use viderec_signature::{Cuboid, CuboidSignature, SignatureSeries};
use viderec_video::VideoId;

/// Arbitrary finite `f64` from raw bits: non-finite draws keep their sign
/// and mantissa but drop the exponent, landing on ±0.0 and subnormals — the
/// exact values a decimal codec would mangle.
fn finite_value() -> impl Strategy<Value = f64> {
    (0..=u64::MAX).prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            v
        } else {
            f64::from_bits(bits & 0x800F_FFFF_FFFF_FFFF)
        }
    })
}

/// A Definition-1-valid signature: 1–6 cuboids, arbitrary finite values,
/// positive weights normalized to unit mass.
fn signature() -> impl Strategy<Value = CuboidSignature> {
    (1..7usize)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(finite_value(), n),
                prop::collection::vec(0.05..1.0f64, n),
            )
        })
        .prop_map(|(values, raw_weights)| {
            let total: f64 = raw_weights.iter().sum();
            CuboidSignature::new(
                values
                    .into_iter()
                    .zip(raw_weights)
                    .map(|(value, w)| Cuboid {
                        value,
                        weight: w / total,
                    })
                    .collect(),
            )
        })
}

fn series() -> impl Strategy<Value = SignatureSeries> {
    prop::collection::vec(signature(), 0..4).prop_map(|sigs| {
        if sigs.is_empty() {
            SignatureSeries::default()
        } else {
            SignatureSeries::new(sigs)
        }
    })
}

/// Lowercase-ascii user names: no separators the line format reserves.
fn user() -> impl Strategy<Value = String> {
    prop::collection::vec(0..26u8, 1..8)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn series_round_trip_is_bit_exact(s in series()) {
        let encoded = encode_series(&s);
        let decoded = decode_series(&encoded)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        // Bit-level equality, cuboid by cuboid: `==` on f64 would let a
        // dropped -0.0 sign slip through.
        prop_assert_eq!(decoded.signatures().len(), s.signatures().len());
        for (d, o) in decoded.signatures().iter().zip(s.signatures()) {
            prop_assert_eq!(d.cuboids().len(), o.cuboids().len());
            for (dc, oc) in d.cuboids().iter().zip(o.cuboids()) {
                prop_assert_eq!(dc.value.to_bits(), oc.value.to_bits());
                prop_assert_eq!(dc.weight.to_bits(), oc.weight.to_bits());
            }
        }
        // Re-encoding is a fixed point — the codec is canonical.
        prop_assert_eq!(encode_series(&decoded), encoded);
    }

    #[test]
    fn non_finite_values_are_rejected_not_panicking(bits in 0..=u64::MAX, as_weight in 0..2u8) {
        // Force the exponent to all-ones: infinity or NaN, sign preserved.
        let bad = f64::from_bits(bits | 0x7FF0_0000_0000_0000);
        prop_assert!(!bad.is_finite());
        let good = "3fe0000000000000"; // 0.5
        let line = if as_weight == 0 {
            // Bad value, valid weights summing to 1.
            format!("{:016x}:{good},{good}:{good}", bad.to_bits())
        } else {
            // Bad weight.
            format!("{good}:{:016x}", bad.to_bits())
        };
        prop_assert!(decode_series(&line).is_err(), "accepted {line}");
    }

    #[test]
    fn event_bodies_round_trip_through_the_parser(
        specs in prop::collection::vec(
            (0..3u8, 1..50_000u64, user(), 1..5u32, series()),
            1..10,
        ),
    ) {
        // Build the body and, in parallel, the expected event list with the
        // parser's collapse rule: consecutive comments form one batch.
        let mut body = String::new();
        let mut expected: Vec<UpdateEvent> = Vec::new();
        for (tag, id, user, amount, series) in specs {
            match tag {
                0 => {
                    body.push_str(&encode_comment(VideoId(id), &user));
                    let update = SocialUpdate { video: VideoId(id), user };
                    match expected.last_mut() {
                        Some(UpdateEvent::Comments(batch)) => batch.push(update),
                        _ => expected.push(UpdateEvent::Comments(vec![update])),
                    }
                }
                1 => {
                    let video = CorpusVideo { id: VideoId(id), series, users: vec![user] };
                    body.push_str(&encode_ingest(&video));
                    expected.push(UpdateEvent::Ingest(vec![video]));
                }
                _ => {
                    body.push_str(&encode_age(amount));
                    expected.push(UpdateEvent::Age(amount));
                }
            }
            body.push('\n');
        }
        let parsed = parse_update_body(&body)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        // `UpdateEvent` has no `PartialEq`; its Debug form includes every
        // f64 in `{:?}` notation, which is value-lossless for finite f64.
        prop_assert_eq!(format!("{parsed:?}"), format!("{expected:?}"));
    }

    #[test]
    fn wal_event_payloads_round_trip(
        tag in 0..3u8,
        id in 1..50_000u64,
        names in prop::collection::vec(user(), 1..4),
        amount in 1..5u32,
        s in series(),
    ) {
        let event = match tag {
            0 => UpdateEvent::Comments(
                names
                    .iter()
                    .map(|u| SocialUpdate { video: VideoId(id), user: u.clone() })
                    .collect(),
            ),
            1 => UpdateEvent::Ingest(
                names
                    .iter()
                    .enumerate()
                    .map(|(i, u)| CorpusVideo {
                        id: VideoId(id + i as u64),
                        series: s.clone(),
                        users: vec![u.clone()],
                    })
                    .collect(),
            ),
            _ => UpdateEvent::Age(amount),
        };
        let payload = encode_event(&event);
        let decoded = decode_event(payload.as_bytes())
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(format!("{decoded:?}"), format!("{event:?}"));
    }
}

#[test]
fn decode_event_rejects_garbage_without_panicking() {
    for junk in [
        &b""[..],
        b"# nothing but a comment\n",
        b"\xff\xfe not utf8",
        b"comment 1 ann\nage 2", // two events in one record
    ] {
        assert!(decode_event(junk).is_err(), "accepted {junk:?}");
    }
}
