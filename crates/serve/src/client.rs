//! A minimal blocking HTTP/1.1 client — one request per connection, matching
//! the server's `Connection: close` discipline. Shared by the e2e suite, the
//! demo example, and the closed-loop load generator.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, as UTF-8 (lossy).
    pub body: String,
}

/// Performs one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Convenience GET.
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> std::io::Result<Response> {
    request(addr, "GET", target, "", timeout)
}

/// Convenience POST.
pub fn post(
    addr: SocketAddr,
    target: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<Response> {
    request(addr, "POST", target, body, timeout)
}

fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let status_line = head.split("\r\n").next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    Ok(Response {
        status,
        body: String::from_utf8_lossy(&raw[head_end + 4..]).into_owned(),
    })
}

/// Pulls the first `"key":<integer>` out of a flat JSON body — enough to
/// read the tiny documents this server emits without a JSON dependency.
pub fn json_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pulls the first `"key":"value"` string out of a flat JSON body (no
/// unescaping — the callers read hex ids and labels that never contain
/// escapes).
pub fn json_str(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = body.find(&needle)? + needle.len();
    let end = body[start..].find('"')?;
    Some(body[start..start + end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok");
        assert!(parse_response(b"garbage").is_err());
    }

    #[test]
    fn json_u64_extracts_integers() {
        let body = "{\"accepted\":3,\"epoch_at_enqueue\":12}";
        assert_eq!(json_u64(body, "accepted"), Some(3));
        assert_eq!(json_u64(body, "epoch_at_enqueue"), Some(12));
        assert_eq!(json_u64(body, "missing"), None);
    }

    #[test]
    fn json_str_extracts_strings() {
        let body = "{\"trace\":\"00000000000000ab\",\"strategy\":\"csf-sar-h\"}";
        assert_eq!(json_str(body, "trace"), Some("00000000000000ab".into()));
        assert_eq!(json_str(body, "strategy"), Some("csf-sar-h".into()));
        assert_eq!(json_str(body, "missing"), None);
    }
}
