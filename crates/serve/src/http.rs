//! A deliberately minimal HTTP/1.1 subset over `std::net` — just enough to
//! serve the four endpoints without any external dependency (the build
//! container is offline).
//!
//! Supported: one request per connection (`Connection: close` on every
//! response), request line + headers capped at 16 KiB, bodies capped at
//! 4 MiB and sized by `Content-Length`. Anything outside that subset parses
//! to [`HttpError::Malformed`] and is answered with 400.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Head (request line + headers) size cap.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Body size cap.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased as received).
    pub method: String,
    /// Path without the query string, percent-decoded.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not the HTTP subset we speak; the static
    /// string names the first violation.
    Malformed(&'static str),
    /// The socket failed (timeout, reset); no response is possible.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    // --- read until the blank line ends the head ---
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed("bad request line"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("bad request line"));
    }
    if method.is_empty() || target.is_empty() {
        return Err(HttpError::Malformed("bad request line"));
    }

    // --- headers: only Content-Length matters to this subset ---
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("bad header line"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::Malformed("body too large"));
            }
        }
    }

    // --- body ---
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    // --- split target into path + query ---
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path),
        query,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` escapes and `+` (as space). Invalid escapes pass through
/// verbatim, which is the lenient behaviour clients expect from debug
/// servers.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Writes a complete `Connection: close` response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_headers(stream, status, content_type, &[], body)
}

/// Like [`write_response`] with extra `name: value` headers (e.g. the
/// `X-Trace-Id` a traced `/recommend` response carries).
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let reason = reason_of(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("no-escapes"), "no-escapes");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("%41%42"), "AB");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
