//! Epoch-swapped corpus snapshots.
//!
//! The serving layer's consistency contract is simple: every query runs
//! against *some* complete corpus state — never a half-applied update. The
//! single writer applies a maintenance batch to its private master copy and
//! then publishes the next state as a fresh `Arc<T>` into a [`SnapshotCell`],
//! bumping the epoch counter.
//!
//! Readers go through a per-thread [`CachedSnapshot`]: the hot path is one
//! atomic epoch load — if the epoch matches the cached one (the common case
//! between publishes), the reader keeps using its pinned `Arc` without
//! touching any lock. Only on an epoch change does the reader take the slot
//! mutex for the few nanoseconds needed to clone the new `Arc`. The corpus
//! itself is therefore never locked: publication swaps a pointer, old
//! snapshots stay alive exactly as long as some reader still pins them, and
//! reclamation is plain `Arc` reference counting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A published, epoch-versioned `Arc<T>` slot (single writer, many readers).
#[derive(Debug)]
pub struct SnapshotCell<T> {
    /// Epoch of the currently published snapshot. Written only while the
    /// slot mutex is held, so `epoch` and `slot` can never disagree for
    /// longer than one publication.
    epoch: AtomicU64,
    /// Construction instant; publication times are stored as offsets from
    /// it so the age gauge needs only one `AtomicU64`.
    born: Instant,
    /// Microseconds from `born` to the latest publication.
    published_at_micros: AtomicU64,
    slot: Mutex<(Arc<T>, u64)>,
}

impl<T> SnapshotCell<T> {
    /// Publishes `initial` as epoch 1.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            epoch: AtomicU64::new(1),
            born: Instant::now(),
            published_at_micros: AtomicU64::new(0),
            slot: Mutex::new((initial, 1)),
        }
    }

    /// Atomically publishes the next snapshot and returns its epoch.
    /// Single-writer by convention; concurrent publishers would still be
    /// safe (the mutex serialises them), just unordered.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let mut slot = self.slot.lock().expect("snapshot slot poisoned");
        slot.1 += 1;
        slot.0 = next;
        let epoch = slot.1;
        self.published_at_micros
            .store(self.born.elapsed().as_micros() as u64, Ordering::Relaxed);
        // Released while the lock is held: a reader that observes the new
        // epoch and then locks the slot is guaranteed to find a snapshot at
        // least this new.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Microseconds since the latest publication (since construction while
    /// the initial snapshot is still current) — the staleness gauge
    /// `/metrics` exposes as `serve_snapshot_age_micros`.
    pub fn age_micros(&self) -> u64 {
        (self.born.elapsed().as_micros() as u64)
            .saturating_sub(self.published_at_micros.load(Ordering::Relaxed))
    }

    /// Clones out the current `(snapshot, epoch)` pair (slow path; readers
    /// normally go through [`CachedSnapshot::get`]).
    pub fn load(&self) -> (Arc<T>, u64) {
        let slot = self.slot.lock().expect("snapshot slot poisoned");
        (Arc::clone(&slot.0), slot.1)
    }
}

/// A reader's pinned snapshot: refreshed only when the cell's epoch moves.
#[derive(Debug)]
pub struct CachedSnapshot<T> {
    arc: Arc<T>,
    epoch: u64,
}

impl<T> CachedSnapshot<T> {
    /// Pins the cell's current snapshot.
    pub fn new(cell: &SnapshotCell<T>) -> Self {
        let (arc, epoch) = cell.load();
        Self { arc, epoch }
    }

    /// The freshest snapshot, pinned for this request (an `Arc` clone — one
    /// reference-count bump): one atomic epoch load when unchanged, a brief
    /// slot lock to re-pin otherwise.
    pub fn get(&mut self, cell: &SnapshotCell<T>) -> Arc<T> {
        if cell.epoch() != self.epoch {
            let (arc, epoch) = cell.load();
            self.arc = arc;
            self.epoch = epoch;
        }
        Arc::clone(&self.arc)
    }

    /// Epoch of the pinned snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_swaps() {
        let cell = SnapshotCell::new(Arc::new(10u32));
        assert_eq!(cell.epoch(), 1);
        let mut cached = CachedSnapshot::new(&cell);
        assert_eq!(*cached.get(&cell), 10);
        assert_eq!(cell.publish(Arc::new(20)), 2);
        assert_eq!(cell.epoch(), 2);
        assert_eq!(*cached.get(&cell), 20);
        assert_eq!(cached.epoch(), 2);
    }

    #[test]
    fn age_resets_on_publish() {
        let cell = SnapshotCell::new(Arc::new(0u32));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let before = cell.age_micros();
        assert!(before >= 5_000, "age never advanced: {before}");
        cell.publish(Arc::new(1));
        let after = cell.age_micros();
        assert!(after < before, "publish did not reset the age: {after}");
    }

    #[test]
    fn cached_reader_pins_across_publishes_until_refreshed() {
        let cell = SnapshotCell::new(Arc::new(1u32));
        let (pinned, e) = cell.load();
        assert_eq!(e, 1);
        cell.publish(Arc::new(2));
        // The old snapshot survives as long as the reader pins it.
        assert_eq!(*pinned, 1);
        assert_eq!(*cell.load().0, 2);
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_state() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(vec![0u64; 8])));
        crossbeam::thread::scope(|s| {
            let writer = {
                let cell = Arc::clone(&cell);
                s.spawn(move |_| {
                    for v in 1..=50u64 {
                        cell.publish(Arc::new(vec![v; 8]));
                    }
                })
            };
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                s.spawn(move |_| {
                    let mut cached = CachedSnapshot::new(&cell);
                    for _ in 0..200 {
                        let snap = cached.get(&cell);
                        // Every published vector is uniform: a torn state
                        // would mix values.
                        assert!(snap.windows(2).all(|w| w[0] == w[1]));
                    }
                });
            }
            writer.join().unwrap();
        })
        .unwrap();
        assert_eq!(cell.epoch(), 51);
    }
}
