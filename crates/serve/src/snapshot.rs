//! Epoch-swapped corpus snapshots.
//!
//! The serving layer's consistency contract is simple: every query runs
//! against *some* complete corpus state — never a half-applied update. The
//! single writer applies a maintenance batch to its private master copy and
//! then publishes the next state as a fresh `Arc<T>` into a [`SnapshotCell`],
//! bumping the epoch counter.
//!
//! Readers go through a per-thread [`CachedSnapshot`]: the hot path is one
//! atomic epoch load — if the epoch matches the cached one (the common case
//! between publishes), the reader keeps using its pinned `Arc` without
//! touching any lock. Only on an epoch change does the reader take the slot
//! mutex for the few nanoseconds needed to clone the new `Arc`. The corpus
//! itself is therefore never locked: publication swaps a pointer, old
//! snapshots stay alive exactly as long as some reader still pins them, and
//! reclamation is plain `Arc` reference counting.

use super::sync::{Arc, AtomicU64, Instant, Mutex, Ordering};
use std::sync::PoisonError;

/// A published, epoch-versioned `Arc<T>` slot (single writer, many readers).
#[derive(Debug)]
pub struct SnapshotCell<T> {
    /// Epoch of the currently published snapshot. Written only while the
    /// slot mutex is held, so `epoch` and `slot` can never disagree for
    /// longer than one publication.
    epoch: AtomicU64,
    /// Construction instant; publication times are stored as offsets from
    /// it so the age gauge needs only one `AtomicU64`.
    born: Instant,
    /// Microseconds from `born` to the latest publication.
    published_at_micros: AtomicU64,
    slot: Mutex<(Arc<T>, u64)>,
}

impl<T> SnapshotCell<T> {
    /// Publishes `initial` as epoch 1.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            epoch: AtomicU64::new(1),
            born: Instant::now(),
            published_at_micros: AtomicU64::new(0),
            slot: Mutex::new((initial, 1)),
        }
    }

    /// Atomically publishes the next snapshot and returns its epoch.
    /// Single-writer by convention; concurrent publishers would still be
    /// safe (the mutex serialises them), just unordered.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        // Poison recovery instead of panicking on the request path: the pair
        // is always internally consistent (a poisoned lock can only mean a
        // panic *between* publishes, never a half-swapped pair).
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        slot.1 += 1;
        slot.0 = next;
        let epoch = slot.1;
        self.published_at_micros
            .store(self.born.elapsed().as_micros() as u64, Ordering::Relaxed);
        // Released while the lock is held: a reader that observes the new
        // epoch and then locks the slot is guaranteed to find a snapshot at
        // least this new.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Microseconds since the latest publication (since construction while
    /// the initial snapshot is still current) — the staleness gauge
    /// `/metrics` exposes as `serve_snapshot_age_micros`.
    pub fn age_micros(&self) -> u64 {
        (self.born.elapsed().as_micros() as u64)
            .saturating_sub(self.published_at_micros.load(Ordering::Relaxed))
    }

    /// Clones out the current `(snapshot, epoch)` pair (slow path; readers
    /// normally go through [`CachedSnapshot::get`]).
    pub fn load(&self) -> (Arc<T>, u64) {
        let slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        (Arc::clone(&slot.0), slot.1)
    }
}

/// A reader's pinned snapshot: refreshed only when the cell's epoch moves.
#[derive(Debug)]
pub struct CachedSnapshot<T> {
    arc: Arc<T>,
    epoch: u64,
}

impl<T> CachedSnapshot<T> {
    /// Pins the cell's current snapshot.
    pub fn new(cell: &SnapshotCell<T>) -> Self {
        let (arc, epoch) = cell.load();
        Self { arc, epoch }
    }

    /// The freshest snapshot, pinned for this request (an `Arc` clone — one
    /// reference-count bump): one atomic epoch load when unchanged, a brief
    /// slot lock to re-pin otherwise.
    pub fn get(&mut self, cell: &SnapshotCell<T>) -> Arc<T> {
        if cell.epoch() != self.epoch {
            let (arc, epoch) = cell.load();
            self.arc = arc;
            self.epoch = epoch;
        }
        Arc::clone(&self.arc)
    }

    /// Epoch of the pinned snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

// The unit tests live in `tests/snapshot.rs` (they only exercise the
// public API) so that this file stays includable, test-free, into
// `viderec-check`'s instrumented build; the interleaving-exhaustive versions
// of the race tests live in `crates/check/tests/model_snapshot.rs`.
