//! # viderec-serve
//!
//! The online serving layer over [`viderec_core::Recommender`] — the process
//! that turns the paper's *online* framing (a clicked video is the query,
//! the social side is maintained incrementally as comments arrive, Fig. 5)
//! into a running service:
//!
//! * `GET /recommend?video=<id>&k=<n>&strategy=<s>` — top-k recommendations
//!   for a clicked corpus video, bit-identical to a direct library call
//!   against the pinned snapshot (scores ship with their exact `f64` bits);
//! * `POST /update` — a line-oriented batch of comment events, new-video
//!   ingests and connection aging (see [`wire`]), drained by a single-writer
//!   maintenance thread that applies the Fig. 5 paths and publishes the next
//!   snapshot atomically;
//! * `GET /healthz` — liveness, snapshot epoch, corpus size, queue depths;
//! * `GET /metrics` — lock-free counters, per-endpoint latency summaries,
//!   per-stage query histograms and update-pipeline histograms, every family
//!   with `# HELP`/`# TYPE` exposition;
//! * `GET /debug/queries` and `GET /debug/trace/<id>` — recent and slowest
//!   query traces from a lock-free ring, with full stage breakdowns
//!   ([`debug`]).
//!
//! Readers never lock the corpus: snapshots are epoch-swapped `Arc`s
//! ([`snapshot`]), admission is a bounded queue with fast-fail 503
//! backpressure, per-request deadlines answer 504 before scoring starts, and
//! shutdown drains every admitted request ([`server`]). Tracing is on by
//! default and never changes results — the traced scan *is* the untraced
//! scan plus tracer-gated clock reads ([`viderec_core::Recommender::
//! recommend_traced`]); disable it with [`ServeConfig::trace`]. The whole
//! stack is `std::net` + the vendored crossbeam channel — no external
//! dependencies.

#![warn(missing_docs)]

pub mod client;
pub mod debug;
pub mod durability;
pub mod http;
pub mod metrics;
pub mod server;
pub mod snapshot;
pub(crate) mod sync;
pub mod wire;

pub use debug::TraceStore;
pub use durability::{DurabilityConfig, RecoveryReport};
pub use metrics::{Endpoint, Gauges, Histogram, Metrics};
pub use server::{parse_strategy, start, start_durable, ServeConfig, ServerHandle};
pub use snapshot::{CachedSnapshot, SnapshotCell};
pub use viderec_wal::FsyncPolicy;
