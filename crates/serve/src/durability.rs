//! Durability glue between the serving layer and [`viderec_wal`].
//!
//! The WAL stores opaque payloads; this module fixes what they mean for the
//! recommender:
//!
//! * **Record payload** — one [`UpdateEvent`] in the [`crate::wire`] text
//!   format (bit-exact `f64` hex), one record per event, so replay preserves
//!   the exact event boundaries the live maintainer applied (batch
//!   boundaries change Fig. 5 maintenance outcomes).
//! * **Snapshot corpus section** — the boot corpus as `ingest` lines, in
//!   boot order.
//! * **Snapshot event section** — the framed WAL records `1..=covered_lsn`,
//!   byte-copied from the log at checkpoint time, never re-serialized from
//!   live state.
//!
//! Recovery therefore re-runs the deterministic pipeline the live server
//! ran — `Recommender::build(cfg, corpus)` then `apply_event` in LSN order —
//! which is what makes the recovered state *bit-identical* to an
//! uninterrupted run over the same acknowledged events (the kill-and-restart
//! e2e asserts this across every strategy). The price is replay time linear
//! in the covered history; the benefit is that no hand-written
//! serializer of path-dependent UIG/MSF state can ever drift from the live
//! structs. DESIGN.md §13 documents the trade and the full protocol.

use crate::metrics::Metrics;
use crate::wire;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use viderec_core::{CorpusVideo, Recommender, RecommenderConfig, UpdateEvent};
use viderec_wal::{
    iter_records, DurabilityGate, FsyncPolicy, Snapshot, SnapshotStore, Wal, WalError, WalOptions,
};

/// Durability knobs for a served recommender.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments and snapshots.
    pub data_dir: PathBuf,
    /// When appended records reach stable storage (DESIGN.md §13 matrix).
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Write a fresh snapshot once this many events accumulated beyond the
    /// last one (a checkpoint also always runs on graceful shutdown).
    pub snapshot_every_events: u64,
}

impl DurabilityConfig {
    /// Defaults over `data_dir`: per-batch fsync, 8 MiB segments, snapshot
    /// every 512 events.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Batch,
            segment_bytes: 8 << 20,
            snapshot_every_events: 512,
        }
    }
}

/// Encodes one event as a WAL record payload (wire lines; one event may span
/// several lines — e.g. a comments batch — but one record is one event).
pub fn encode_event(event: &UpdateEvent) -> String {
    match event {
        UpdateEvent::Comments(batch) => batch
            .iter()
            .map(|u| wire::encode_comment(u.video, &u.user))
            .collect::<Vec<_>>()
            .join("\n"),
        UpdateEvent::Ingest(videos) => videos
            .iter()
            .map(wire::encode_ingest)
            .collect::<Vec<_>>()
            .join("\n"),
        UpdateEvent::Age(amount) => wire::encode_age(*amount),
    }
}

/// Decodes a WAL record payload back into the single event it framed.
///
/// `parse_update_body` re-collapses consecutive comment lines; consecutive
/// ingest lines parse as one event per line, so a multi-video ingest event
/// is re-merged here to preserve the original event boundary.
pub fn decode_event(payload: &[u8]) -> Result<UpdateEvent, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let mut events = wire::parse_update_body(text)?;
    match events.len() {
        0 => Err("payload encodes no event".to_string()),
        1 => Ok(events.remove(0)),
        _ => {
            let mut videos = Vec::new();
            for event in events {
                match event {
                    UpdateEvent::Ingest(mut v) => videos.append(&mut v),
                    other => {
                        return Err(format!(
                            "payload mixes event kinds ({} after ingest lines)",
                            wire::event_kind_label(&other)
                        ))
                    }
                }
            }
            Ok(UpdateEvent::Ingest(videos))
        }
    }
}

/// Serializes the boot corpus as the snapshot's corpus section.
fn encode_corpus(corpus: &[CorpusVideo]) -> Vec<u8> {
    let mut out = String::with_capacity(corpus.len() * 64);
    out.push_str("# viderec boot corpus\n");
    for video in corpus {
        out.push_str(&wire::encode_ingest(video));
        out.push('\n');
    }
    out.into_bytes()
}

/// Parses a snapshot's corpus section back into boot order.
fn decode_corpus(bytes: &[u8]) -> Result<Vec<CorpusVideo>, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "corpus section is not UTF-8".to_string())?;
    let events = wire::parse_update_body(text)?;
    let mut corpus = Vec::with_capacity(events.len());
    for event in events {
        match event {
            UpdateEvent::Ingest(mut videos) => corpus.append(&mut videos),
            other => {
                return Err(format!(
                    "corpus section holds a non-ingest event ({})",
                    wire::event_kind_label(&other)
                ))
            }
        }
    }
    Ok(corpus)
}

/// What recovery found and did, surfaced on `/debug/durability` and by the
/// durable entry points.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// True when the data dir was empty and this boot seeded it.
    pub bootstrapped: bool,
    /// LSN covered by the snapshot recovery started from.
    pub snapshot_lsn: u64,
    /// Events replayed out of the snapshot's event section.
    pub snapshot_events: u64,
    /// Events replayed from the log tail beyond the snapshot.
    pub tail_events: u64,
    /// Highest LSN reflected in the recovered recommender.
    pub recovered_lsn: u64,
    /// Torn-tail bytes truncated from the final segment.
    pub truncated_bytes: u64,
    /// Description of the torn tail, if one was found.
    pub torn: Option<String>,
    /// Set when the newest snapshot was unreadable and an older one was used.
    pub snapshot_fallback: Option<String>,
}

/// Scrape-visible durability state, shared between the maintenance writer
/// (sole mutator) and the workers answering `/metrics` and
/// `/debug/durability`. All counters are monitoring-only except the gate,
/// whose Release/Acquire ordering carries the crash-safety invariant.
#[derive(Debug)]
pub struct DurabilityStatus {
    /// The append-before-apply gate (also the source of the lag gauge).
    pub gate: DurabilityGate,
    /// Highest LSN known fsynced to stable storage.
    pub synced_lsn: AtomicU64,
    /// LSN covered by the newest published snapshot.
    pub snapshot_lsn: AtomicU64,
    /// Live WAL segment files.
    pub segment_count: AtomicU64,
    /// 1 once a WAL write failed and durable acks stopped.
    pub failed: AtomicU64,
    /// Fsync policy label (static after boot).
    pub fsync_label: String,
    /// What recovery found at boot (static after boot).
    pub recovery: RecoveryReport,
}

impl DurabilityStatus {
    /// The `/debug/durability` JSON body.
    pub fn debug_json(&self) -> String {
        let r = &self.recovery;
        format!(
            "{{\"enabled\":true,\"fsync\":\"{}\",\"appended_lsn\":{},\"acked_lsn\":{},\
             \"synced_lsn\":{},\"snapshot_lsn\":{},\"segments\":{},\"failed\":{},\
             \"recovery\":{{\"bootstrapped\":{},\"snapshot_lsn\":{},\"snapshot_events\":{},\
             \"tail_events\":{},\"recovered_lsn\":{},\"truncated_bytes\":{},\"torn\":{}}}}}",
            crate::http::escape_json(&self.fsync_label),
            self.gate.appended(),
            self.gate.acked(),
            self.synced_lsn.load(Ordering::Relaxed),
            self.snapshot_lsn.load(Ordering::Relaxed),
            self.segment_count.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            r.bootstrapped,
            r.snapshot_lsn,
            r.snapshot_events,
            r.tail_events,
            r.recovered_lsn,
            r.truncated_bytes,
            match &r.torn {
                Some(t) => format!("\"{}\"", crate::http::escape_json(t)),
                None => "null".to_string(),
            },
        )
    }
}

/// The maintenance thread's durable log: WAL + snapshot store + the shared
/// status block. Single-writer — only the maintainer touches the mutable
/// parts.
pub struct DurableLog {
    wal: Wal,
    store: SnapshotStore,
    cfg: DurabilityConfig,
    status: Arc<DurabilityStatus>,
    snapshot_lsn: u64,
}

impl DurableLog {
    /// The shared scrape-side view.
    pub fn status(&self) -> Arc<DurabilityStatus> {
        Arc::clone(&self.status)
    }

    /// Appends and commits one batch of events (append-before-apply: the
    /// caller must not apply or acknowledge them until this returns). Returns
    /// the batch's last LSN.
    pub fn append_batch(
        &mut self,
        events: &[UpdateEvent],
        metrics: &Metrics,
    ) -> Result<u64, WalError> {
        let mut last = self.wal.last_lsn();
        for event in events {
            let payload = encode_event(event);
            let start = Instant::now();
            last = self.wal.append(payload.as_bytes())?;
            metrics
                .wal_append_micros
                .record(start.elapsed().as_micros() as u64);
            metrics.wal_appends.fetch_add(1, Ordering::Relaxed);
            metrics
                .wal_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
        }
        let start = Instant::now();
        if self.wal.commit()? {
            metrics
                .wal_fsync_micros
                .record(start.elapsed().as_micros() as u64);
            metrics.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        // Publish `appended` only after the batch is framed (and fsynced per
        // policy): the ordering `crates/check` model-checks.
        self.status.gate.record_appended(last);
        Ok(last)
    }

    /// Declares every event up to `lsn` applied and acknowledged.
    pub fn mark_acked(&self, lsn: u64) {
        self.status.gate.record_acked(lsn);
    }

    /// Writes a checkpoint if `acked_lsn` ran far enough ahead of the last
    /// snapshot (or unconditionally with `force`). Protocol order: fsync the
    /// WAL tail, byte-copy the new records onto the previous snapshot's
    /// event stream, publish atomically, only then retire covered segments.
    pub fn maybe_checkpoint(
        &mut self,
        acked_lsn: u64,
        force: bool,
        metrics: &Metrics,
    ) -> Result<bool, WalError> {
        if acked_lsn <= self.snapshot_lsn {
            return Ok(false);
        }
        if !force && acked_lsn - self.snapshot_lsn < self.cfg.snapshot_every_events {
            return Ok(false);
        }
        let start = Instant::now();
        // The WAL tail must be durable before a snapshot claims to cover it.
        self.wal.sync()?;
        let Some((prev, _)) = self.store.load_latest()? else {
            return Err(WalError::Corrupt(
                "checkpoint found no previous snapshot (bootstrap writes one)".to_string(),
            ));
        };
        let mut events = prev.events;
        self.wal
            .copy_records(prev.covered_lsn, acked_lsn, &mut events)?;
        self.store.write(&Snapshot {
            covered_lsn: acked_lsn,
            corpus: prev.corpus,
            events,
        })?;
        let retired = self.wal.retire_through(acked_lsn)?;
        self.snapshot_lsn = acked_lsn;
        metrics
            .wal_checkpoint_micros
            .record(start.elapsed().as_micros() as u64);
        metrics.wal_checkpoints.fetch_add(1, Ordering::Relaxed);
        metrics
            .wal_segments_retired
            .fetch_add(retired as u64, Ordering::Relaxed);
        Ok(true)
    }

    /// Graceful-shutdown ordering: flush + fsync the WAL tail *first*, then
    /// publish the final checkpoint. Errors are recorded, not propagated —
    /// shutdown must complete.
    pub fn finalize(&mut self, acked_lsn: u64, metrics: &Metrics) {
        if self.wal.sync().is_err() {
            metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.publish_status();
        if self.maybe_checkpoint(acked_lsn, true, metrics).is_err() {
            metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
        }
        self.publish_status();
    }

    /// Pushes the writer-side gauges into the shared status block.
    pub fn publish_status(&self) {
        self.status
            .synced_lsn
            .store(self.wal.synced_lsn(), Ordering::Relaxed);
        self.status
            .snapshot_lsn
            .store(self.snapshot_lsn, Ordering::Relaxed);
        self.status
            .segment_count
            .store(self.wal.segment_count() as u64, Ordering::Relaxed);
    }

    /// Marks the log failed (WAL write error): durable acks stop, serving
    /// continues non-durably.
    pub fn mark_failed(&self) {
        self.status.failed.store(1, Ordering::Relaxed);
    }
}

/// Recovers (or bootstraps) a recommender from `cfg.data_dir`.
///
/// * Fresh directory — builds from `boot_corpus`, publishes the LSN-0
///   snapshot seed, opens an empty log.
/// * Existing directory — **ignores** `boot_corpus`, rebuilds from the
///   newest valid snapshot's corpus section, replays its event section, then
///   replays the log tail beyond the snapshot (truncating a torn final
///   record). `rec_cfg` must match the original boot — it is not persisted.
pub fn recover(
    cfg: &DurabilityConfig,
    rec_cfg: RecommenderConfig,
    boot_corpus: Vec<CorpusVideo>,
) -> Result<(Recommender, DurableLog, RecoveryReport), String> {
    let store = SnapshotStore::open(&cfg.data_dir).map_err(|e| e.to_string())?;
    let options = WalOptions {
        segment_bytes: cfg.segment_bytes,
        fsync: cfg.fsync,
    };
    let mut report = RecoveryReport::default();

    let (mut master, covered) = match store.load_latest().map_err(|e| e.to_string())? {
        None => {
            let master = Recommender::build(rec_cfg, boot_corpus.clone())
                .map_err(|e| format!("boot corpus rejected: {e:?}"))?;
            store
                .write(&Snapshot {
                    covered_lsn: 0,
                    corpus: encode_corpus(&boot_corpus),
                    events: Vec::new(),
                })
                .map_err(|e| e.to_string())?;
            report.bootstrapped = true;
            (master, 0)
        }
        Some((snap, fallback)) => {
            report.snapshot_fallback = fallback;
            report.snapshot_lsn = snap.covered_lsn;
            let corpus = decode_corpus(&snap.corpus)?;
            let mut master = Recommender::build(rec_cfg, corpus)
                .map_err(|e| format!("snapshot corpus rejected: {e:?}"))?;
            let records = iter_records(&snap.events).map_err(|e| e.to_string())?;
            for record in &records {
                let event = decode_event(&record.payload)
                    .map_err(|e| format!("snapshot lsn {}: {e}", record.lsn))?;
                // Failures (e.g. duplicate ingest) are deterministic and were
                // also failures live; replay must take the identical path.
                let _ = master.apply_event(event);
            }
            report.snapshot_events = records.len() as u64;
            (master, snap.covered_lsn)
        }
    };

    let recovery = Wal::open(&cfg.data_dir, options, covered).map_err(|e| e.to_string())?;
    report.truncated_bytes = recovery.truncated_bytes;
    report.torn = recovery.torn;
    let mut expect = covered + 1;
    for record in &recovery.records {
        if record.lsn <= covered {
            continue; // still on disk, already reflected in the snapshot
        }
        if record.lsn != expect {
            return Err(format!(
                "log tail gap: expected lsn {expect}, found {}",
                record.lsn
            ));
        }
        let event =
            decode_event(&record.payload).map_err(|e| format!("log lsn {}: {e}", record.lsn))?;
        let _ = master.apply_event(event);
        report.tail_events += 1;
        expect += 1;
    }

    let mut wal = recovery.wal;
    // Everything replayed is exactly as durable as it was before the
    // restart; re-fsync so `synced_lsn` is truthful going forward.
    wal.sync().map_err(|e| e.to_string())?;
    report.recovered_lsn = wal.last_lsn();

    let status = Arc::new(DurabilityStatus {
        gate: DurabilityGate::new(wal.last_lsn()),
        synced_lsn: AtomicU64::new(wal.synced_lsn()),
        snapshot_lsn: AtomicU64::new(covered),
        segment_count: AtomicU64::new(wal.segment_count() as u64),
        failed: AtomicU64::new(0),
        fsync_label: cfg.fsync.label(),
        recovery: report.clone(),
    });
    let log = DurableLog {
        wal,
        store,
        cfg: cfg.clone(),
        status,
        snapshot_lsn: covered,
    };
    Ok((master, log, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use viderec_core::SocialUpdate;
    use viderec_signature::{Cuboid, CuboidSignature, SignatureSeries};
    use viderec_video::VideoId;

    fn series() -> SignatureSeries {
        SignatureSeries::new(vec![CuboidSignature::new(vec![
            Cuboid {
                value: 0.25,
                weight: 0.5,
            },
            Cuboid {
                value: -0.0,
                weight: 0.5,
            },
        ])])
    }

    #[test]
    fn event_payloads_roundtrip() {
        let events = [
            UpdateEvent::Comments(vec![
                SocialUpdate {
                    video: VideoId(3),
                    user: "ann lee".into(),
                },
                SocialUpdate {
                    video: VideoId(4),
                    user: "bob".into(),
                },
            ]),
            UpdateEvent::Ingest(vec![
                CorpusVideo {
                    id: VideoId(10),
                    series: series(),
                    users: vec!["carol".into()],
                },
                CorpusVideo {
                    id: VideoId(11),
                    series: SignatureSeries::default(),
                    users: Vec::new(),
                },
            ]),
            UpdateEvent::Age(7),
        ];
        for event in &events {
            let decoded = decode_event(encode_event(event).as_bytes()).unwrap();
            assert_eq!(format!("{decoded:?}"), format!("{event:?}"));
        }
    }

    #[test]
    fn corpus_section_roundtrips_in_order() {
        let corpus = vec![
            CorpusVideo {
                id: VideoId(2),
                series: series(),
                users: vec!["x".into(), "y".into()],
            },
            CorpusVideo {
                id: VideoId(1),
                series: SignatureSeries::default(),
                users: Vec::new(),
            },
        ];
        let decoded = decode_corpus(&encode_corpus(&corpus)).unwrap();
        assert_eq!(format!("{decoded:?}"), format!("{corpus:?}"));
    }

    #[test]
    fn decode_event_rejects_junk() {
        assert!(decode_event(b"").is_err());
        assert!(decode_event(b"# only a comment\n").is_err());
        assert!(decode_event(&[0xFF, 0xFE]).is_err());
        // One record never mixes kinds.
        assert!(decode_event(b"age 1\nage 2").is_err());
        let mixed = format!(
            "{}\n{}",
            wire::encode_ingest(&CorpusVideo {
                id: VideoId(1),
                series: SignatureSeries::default(),
                users: Vec::new(),
            }),
            wire::encode_age(1)
        );
        assert!(decode_event(mixed.as_bytes()).is_err());
    }
}
