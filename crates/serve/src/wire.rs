//! The update-pipeline wire format.
//!
//! `POST /update` carries a plain-text, line-oriented batch — one event per
//! line, `#` comments and blank lines ignored:
//!
//! ```text
//! comment <video_id> <user name...>
//! ingest <video_id> <users-csv|-> <series|->
//! age <amount>
//! ```
//!
//! Signature series travel as **bit-exact** hex: every `f64` is encoded as
//! its 16-digit `to_bits` hex, cuboids as `value:weight`, cuboids joined by
//! `,`, signatures joined by `|`, and an empty series as `-`. Decoding
//! re-validates Definition 1 (positive weights, unit mass) before
//! constructing the signature, so a malformed body can never panic the
//! server — it parses to an error and is answered with 400.
//!
//! The same codec backs the load generator and the e2e suite: a series that
//! round-trips through this format is `==` to the original, which is what
//! makes "served results are bit-identical to direct library calls" testable
//! across a real socket.

use viderec_core::{CorpusVideo, SocialUpdate, UpdateEvent};
use viderec_signature::{Cuboid, CuboidSignature, SignatureSeries};
use viderec_video::VideoId;

fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("f64 hex '{s}' is not 16 digits"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 hex '{s}'"))
}

/// Encodes a series bit-exactly (`-` for an empty series).
pub fn encode_series(series: &SignatureSeries) -> String {
    if series.is_empty() {
        return "-".to_string();
    }
    series
        .signatures()
        .iter()
        .map(|sig| {
            sig.cuboids()
                .iter()
                .map(|c| format!("{}:{}", f64_to_hex(c.value), f64_to_hex(c.weight)))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("|")
}

/// Decodes [`encode_series`] output, re-validating Definition 1.
pub fn decode_series(s: &str) -> Result<SignatureSeries, String> {
    if s == "-" {
        return Ok(SignatureSeries::default());
    }
    let mut signatures = Vec::new();
    for (i, sig_str) in s.split('|').enumerate() {
        let mut cuboids = Vec::new();
        for pair in sig_str.split(',') {
            let Some((v, w)) = pair.split_once(':') else {
                return Err(format!("signature {i}: cuboid '{pair}' lacks ':'"));
            };
            cuboids.push(Cuboid {
                value: f64_from_hex(v)?,
                weight: f64_from_hex(w)?,
            });
        }
        // Re-validate before the panicking constructor.
        if cuboids.is_empty() {
            return Err(format!("signature {i} has no cuboids"));
        }
        if !cuboids
            .iter()
            .all(|c| c.weight > 0.0 && c.weight.is_finite() && c.value.is_finite())
        {
            return Err(format!(
                "signature {i}: weights must be positive and finite"
            ));
        }
        let mass: f64 = cuboids.iter().map(|c| c.weight).sum();
        if (mass - 1.0).abs() >= 1e-6 {
            return Err(format!("signature {i}: mass {mass} != 1"));
        }
        signatures.push(CuboidSignature::new(cuboids));
    }
    Ok(SignatureSeries::new(signatures))
}

/// Slot of an event's kind in the apply-latency histograms
/// ([`crate::metrics::UPDATE_KIND_LABELS`] has the matching labels).
pub fn event_kind_index(event: &UpdateEvent) -> usize {
    match event {
        UpdateEvent::Comments(_) => 0,
        UpdateEvent::Ingest(_) => 1,
        UpdateEvent::Age(_) => 2,
    }
}

/// Metric label of an event's kind.
pub fn event_kind_label(event: &UpdateEvent) -> &'static str {
    crate::metrics::UPDATE_KIND_LABELS[event_kind_index(event)]
}

/// Encodes one comment event line.
pub fn encode_comment(video: VideoId, user: &str) -> String {
    format!("comment {} {user}", video.0)
}

/// Encodes one ingest event line.
pub fn encode_ingest(video: &CorpusVideo) -> String {
    let users = if video.users.is_empty() {
        "-".to_string()
    } else {
        video.users.join(",")
    };
    format!(
        "ingest {} {users} {}",
        video.id.0,
        encode_series(&video.series)
    )
}

/// Encodes one aging event line.
pub fn encode_age(amount: u32) -> String {
    format!("age {amount}")
}

/// Parses an update body into events. Consecutive `comment` lines collapse
/// into one [`UpdateEvent::Comments`] batch (one Fig. 5 maintenance run),
/// matching how a period's comments arrive together.
pub fn parse_update_body(body: &str) -> Result<Vec<UpdateEvent>, String> {
    let mut events: Vec<UpdateEvent> = Vec::new();
    for (lineno, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        let mut parts = line.splitn(2, ' ');
        let verb = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match verb {
            "comment" => {
                let Some((id_str, user)) = rest.split_once(' ') else {
                    return Err(err("comment needs '<video_id> <user>'".into()));
                };
                let id: u64 = id_str
                    .parse()
                    .map_err(|_| err(format!("bad video id '{id_str}'")))?;
                let user = user.trim();
                if user.is_empty() {
                    return Err(err("empty user name".into()));
                }
                let update = SocialUpdate {
                    video: VideoId(id),
                    user: user.to_string(),
                };
                match events.last_mut() {
                    Some(UpdateEvent::Comments(batch)) => batch.push(update),
                    _ => events.push(UpdateEvent::Comments(vec![update])),
                }
            }
            "ingest" => {
                let mut fields = rest.splitn(3, ' ');
                let (Some(id_str), Some(users_csv), Some(series_str)) =
                    (fields.next(), fields.next(), fields.next())
                else {
                    return Err(err("ingest needs '<id> <users-csv|-> <series|->'".into()));
                };
                let id: u64 = id_str
                    .parse()
                    .map_err(|_| err(format!("bad video id '{id_str}'")))?;
                let users: Vec<String> = if users_csv == "-" {
                    Vec::new()
                } else {
                    users_csv
                        .split(',')
                        .filter(|u| !u.is_empty())
                        .map(str::to_string)
                        .collect()
                };
                let series = decode_series(series_str.trim()).map_err(err)?;
                events.push(UpdateEvent::Ingest(vec![CorpusVideo {
                    id: VideoId(id),
                    series,
                    users,
                }]));
            }
            "age" => {
                let amount: u32 = rest
                    .parse()
                    .map_err(|_| err(format!("bad age amount '{rest}'")))?;
                events.push(UpdateEvent::Age(amount));
            }
            other => return Err(err(format!("unknown verb '{other}'"))),
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> SignatureSeries {
        SignatureSeries::new(vec![
            CuboidSignature::new(vec![
                Cuboid {
                    value: 0.123456789,
                    weight: 0.25,
                },
                Cuboid {
                    value: -3.5e-7,
                    weight: 0.75,
                },
            ]),
            CuboidSignature::new(vec![Cuboid {
                value: 42.0,
                weight: 1.0,
            }]),
        ])
    }

    #[test]
    fn series_roundtrip_is_bit_identical() {
        let s = sample_series();
        assert_eq!(decode_series(&encode_series(&s)).unwrap(), s);
        let empty = SignatureSeries::default();
        assert_eq!(encode_series(&empty), "-");
        assert_eq!(decode_series("-").unwrap(), empty);
    }

    #[test]
    fn decode_rejects_bad_input_without_panicking() {
        assert!(decode_series("nonsense").is_err());
        assert!(decode_series("zzzz:zzzz").is_err());
        // Valid hex but negative weight: bff0000000000000 = -1.0.
        let neg = format!("{}:bff0000000000000", "3ff0000000000000");
        assert!(decode_series(&neg).unwrap_err().contains("positive"));
        // Mass != 1: two cuboids of weight 1.0 each.
        let heavy = "3ff0000000000000:3ff0000000000000,3ff0000000000000:3ff0000000000000";
        assert!(decode_series(heavy).unwrap_err().contains("mass"));
    }

    #[test]
    fn update_body_roundtrip() {
        let video = CorpusVideo {
            id: VideoId(9),
            series: sample_series(),
            users: vec!["ann".into(), "bob".into()],
        };
        let body = format!(
            "# a batch\n{}\n{}\n\n{}\n{}\n",
            encode_comment(VideoId(1), "carol jones"),
            encode_comment(VideoId(2), "dave"),
            encode_ingest(&video),
            encode_age(3),
        );
        let events = parse_update_body(&body).unwrap();
        assert_eq!(events.len(), 3, "comments collapse into one batch");
        match &events[0] {
            UpdateEvent::Comments(batch) => {
                assert_eq!(batch.len(), 2);
                assert_eq!(batch[0].user, "carol jones");
                assert_eq!(batch[1].video, VideoId(2));
            }
            other => panic!("expected comments, got {other:?}"),
        }
        match &events[1] {
            UpdateEvent::Ingest(videos) => {
                assert_eq!(videos[0].id, VideoId(9));
                assert_eq!(videos[0].users, vec!["ann", "bob"]);
                assert_eq!(videos[0].series, sample_series());
            }
            other => panic!("expected ingest, got {other:?}"),
        }
        assert!(matches!(events[2], UpdateEvent::Age(3)));
    }

    #[test]
    fn event_kinds_label_distinctly() {
        let events = [
            UpdateEvent::Comments(vec![]),
            UpdateEvent::Ingest(vec![]),
            UpdateEvent::Age(1),
        ];
        let labels: Vec<&str> = events.iter().map(event_kind_label).collect();
        assert_eq!(labels, vec!["comments", "ingest", "age"]);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(event_kind_index(e), i);
        }
    }

    #[test]
    fn update_body_errors_name_the_line() {
        assert!(parse_update_body("comment 1")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_update_body("bogus 1 2")
            .unwrap_err()
            .contains("bogus"));
        assert!(parse_update_body("age x").unwrap_err().contains("line 1"));
        assert!(parse_update_body("ingest 5 - zz")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_update_body("").unwrap().is_empty());
    }
}
