//! Concurrency facade for the model-checked modules of this crate.
//!
//! [`snapshot`](crate::snapshot) imports its primitives from `super::sync`
//! instead of naming `std` directly. In the normal build this module simply
//! re-exports `std`; `viderec-check` compiles the *same* `snapshot.rs`
//! source (via `#[path]`, under `--cfg viderec_check`) against its
//! instrumented `sync` shim, so the interleavings the model checker explores
//! run the exact shipped code.

pub use std::sync::atomic::{AtomicU64, Ordering};
pub use std::sync::{Arc, Mutex};
pub use std::time::Instant;
