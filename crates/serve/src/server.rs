//! The serving pipeline: acceptor → bounded admission queue → worker pool,
//! plus the single-writer maintenance thread that turns queued
//! [`UpdateEvent`]s into freshly published snapshots.
//!
//! ```text
//!                    ┌────────────── 503 (queue full, fast-fail)
//! accept ── submit ──┤
//!                    └─ admission queue ─ worker ──┬─ 504 (deadline expired
//!                        (bounded MPMC)            │      before scoring)
//!                                                  └─ 200/202/400/404/503
//!   POST /update ── update queue ── maintenance thread
//!                    (bounded)       apply events → master.clone()
//!                                    → SnapshotCell::publish (epoch++)
//! ```
//!
//! Invariants:
//!
//! * **Consistency** — a worker pins one snapshot per request; results are
//!   bit-identical to calling [`Recommender::recommend_excluding`] on that
//!   snapshot directly (the e2e suite asserts this across live updates).
//! * **Accounting** — every accepted connection is counted exactly once:
//!   `submitted == served + rejected + deadline_expired`.
//! * **Bounded memory** — both queues are bounded; overload answers 503
//!   without buffering, so a burst can never grow memory without limit.
//! * **Graceful shutdown** — the acceptor stops submitting, workers drain
//!   every admitted request, and only then does the maintenance thread
//!   retire.

use crate::debug::{trace_json, TraceStore};
use crate::durability::{recover, DurabilityConfig, DurabilityStatus, DurableLog, RecoveryReport};
use crate::http::{
    escape_json, read_request, write_response, write_response_with_headers, HttpError, Request,
};
use crate::metrics::{DurabilitySample, Endpoint, Gauges, Metrics, ProcessSample};
use crate::snapshot::{CachedSnapshot, SnapshotCell};
use crate::wire::{event_kind_index, parse_update_body};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use viderec_core::trace::next_trace_id;
use viderec_core::{
    CorpusVideo, Recommender, RecommenderConfig, Stage, Strategy, Tracer, UpdateEvent,
};
use viderec_trace::AllocSnapshot;
use viderec_video::VideoId;

/// How long an `/update` worker waits for the maintenance writer's durable
/// ack before answering 503. Generous: it must cover the fsyncs and applies
/// of every batch queued ahead.
const DURABLE_ACK_TIMEOUT: Duration = Duration::from_secs(10);

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means `max(2, available_parallelism)` — at least
    /// two, so a parked worker (`/debug/profile`, a slow client) never
    /// head-of-line-blocks the whole pool.
    pub workers: usize,
    /// Admission queue capacity: connections waiting for a worker beyond
    /// this bound are answered 503 immediately.
    pub admission_capacity: usize,
    /// Update queue capacity: `POST /update` batches beyond this bound are
    /// answered 503.
    pub update_capacity: usize,
    /// Default per-request deadline (override per request with
    /// `deadline_ms=`); expiry is checked after queueing and parsing,
    /// *before* scoring starts, and answered 504.
    pub default_deadline: Duration,
    /// Socket read/write timeout.
    pub io_timeout: Duration,
    /// Artificial pre-handling stall applied by every worker — zero in
    /// production; the load/robustness tests use it to make queueing and
    /// deadline behaviour deterministic.
    pub synthetic_delay: Duration,
    /// Upper bound on the `k` a request may ask for (larger values clamp).
    pub max_k: usize,
    /// Per-query tracing and update-pipeline spans. On, every `/recommend`
    /// response carries a trace id resolvable via `GET /debug/trace/<id>`,
    /// per-stage histograms populate on `/metrics`, and results stay
    /// bit-identical to the untraced path (asserted end-to-end). Off, the
    /// instrumentation collapses to one branch per span.
    pub trace: bool,
    /// Capacity of the recent-queries trace ring behind `/debug/queries`
    /// (0 is clamped to 1).
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            admission_capacity: 64,
            update_capacity: 64,
            default_deadline: Duration::from_secs(2),
            io_timeout: Duration::from_secs(2),
            synthetic_delay: Duration::ZERO,
            max_k: 1024,
            trace: true,
            trace_capacity: 256,
        }
    }
}

/// One admitted connection, stamped at admission for deadline accounting.
struct Admitted {
    stream: TcpStream,
    at: Instant,
}

/// One accepted update batch, stamped at enqueue so the maintainer can
/// record how long it waited in the queue. On a durable server the worker
/// holds the receiver end of `ack` and answers 202 only once the maintainer
/// confirms the batch is in the log (append-before-apply).
struct QueuedBatch {
    at: Instant,
    events: Vec<UpdateEvent>,
    ack: Option<Sender<u64>>,
}

/// State shared by the acceptor and every worker.
struct Ctx {
    cfg: ServeConfig,
    metrics: Arc<Metrics>,
    cell: Arc<SnapshotCell<Recommender>>,
    update_tx: Sender<QueuedBatch>,
    /// Probe handles for queue-depth gauges (never received from).
    admission_probe: Receiver<Admitted>,
    tracer: Tracer,
    traces: Arc<TraceStore>,
    /// Shared durability status (None on a non-durable server).
    durability: Option<Arc<DurabilityStatus>>,
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// stops accepting, drains in-flight work, and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop_flag: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    maintainer: Option<std::thread::JoinHandle<()>>,
    metrics: Arc<Metrics>,
    cell: Arc<SnapshotCell<Recommender>>,
    traces: Arc<TraceStore>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The ring of recent query traces (empty while tracing is disabled).
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// Graceful shutdown: stop accepting, drain admitted requests, apply
    /// queued updates, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stop_flag.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()`; it checks the flag first and
        // drops this connection without admitting it.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor dropped its sender: workers drain the remaining
        // admitted connections, then observe disconnection and exit.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // The workers dropped the last update sender: the maintainer drains
        // queued batches, publishes, and exits.
        if let Some(h) = self.maintainer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts the server over `recommender` (no durability: a restart loses
/// every applied update) and returns once the listener is bound and every
/// thread is running.
pub fn start(cfg: ServeConfig, recommender: Recommender) -> std::io::Result<ServerHandle> {
    start_inner(cfg, recommender, None)
}

/// Starts a durable server over `dur.data_dir`: recovers (or bootstraps)
/// the recommender from the newest snapshot + WAL tail, then runs with
/// write-ahead logging — every acknowledged `/update` survives a crash per
/// the configured fsync policy. `rec_cfg`/`boot_corpus` are only used to
/// seed a fresh data dir; an existing one is authoritative.
pub fn start_durable(
    cfg: ServeConfig,
    dur: DurabilityConfig,
    rec_cfg: RecommenderConfig,
    boot_corpus: Vec<CorpusVideo>,
) -> std::io::Result<(ServerHandle, RecoveryReport)> {
    let (master, log, report) = recover(&dur, rec_cfg, boot_corpus)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let handle = start_inner(cfg, master, Some(log))?;
    Ok((handle, report))
}

fn start_inner(
    cfg: ServeConfig,
    recommender: Recommender,
    durable: Option<DurableLog>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = if cfg.workers == 0 {
        // Never fewer than two: `/debug/profile` parks its worker for the
        // whole capture window (and any slow client holds one for a request),
        // so a pool of one would head-of-line-block the entire service on a
        // single-core host — including the very load a capture is meant to
        // observe.
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .max(2)
    } else {
        cfg.workers
    };

    let metrics = Arc::new(Metrics::default());
    let master = recommender;
    let cell = Arc::new(SnapshotCell::new(Arc::new(master.clone())));
    let traces = Arc::new(TraceStore::new(cfg.trace_capacity));
    let tracer = Tracer::new(cfg.trace);
    let (admission_tx, admission_rx) = channel::bounded::<Admitted>(cfg.admission_capacity);
    let (update_tx, update_rx) = channel::bounded::<QueuedBatch>(cfg.update_capacity);
    let stop_flag = Arc::new(AtomicBool::new(false));

    let ctx = Arc::new(Ctx {
        cfg: cfg.clone(),
        metrics: Arc::clone(&metrics),
        cell: Arc::clone(&cell),
        update_tx,
        admission_probe: admission_rx.clone(),
        tracer,
        traces: Arc::clone(&traces),
        durability: durable.as_ref().map(|d| d.status()),
    });

    // --- maintenance thread (the single writer) ---
    let maintainer = {
        let cell = Arc::clone(&cell);
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("serve-maintainer".into())
            .spawn(move || maintainer_loop(master, update_rx, &cell, &metrics, tracer, durable))?
    };

    // --- worker pool ---
    let worker_handles = (0..workers)
        .map(|i| {
            let ctx = Arc::clone(&ctx);
            let rx = admission_rx.clone();
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&ctx, &rx))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    // The pool owns its clones; drop the original so worker exit alone
    // disconnects the update channel.
    drop(admission_rx);

    // --- acceptor ---
    let acceptor = {
        let ctx = Arc::clone(&ctx);
        let flag = Arc::clone(&stop_flag);
        std::thread::Builder::new()
            .name("serve-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &ctx, admission_tx, &flag))?
    };

    Ok(ServerHandle {
        addr,
        stop_flag,
        acceptor: Some(acceptor),
        workers: worker_handles,
        maintainer: Some(maintainer),
        metrics,
        cell,
        traces,
    })
}

fn acceptor_loop(
    listener: &TcpListener,
    ctx: &Ctx,
    admission_tx: Sender<Admitted>,
    stop_flag: &AtomicBool,
) {
    for conn in listener.incoming() {
        if stop_flag.load(Ordering::SeqCst) {
            break; // the waking connection is dropped, never admitted
        }
        let Ok(stream) = conn else { continue };
        ctx.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let admitted = Admitted {
            stream,
            at: Instant::now(),
        };
        match admission_tx.try_send(admitted) {
            Ok(()) => {}
            Err(TrySendError::Full(adm)) => {
                ctx.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                reject_503(adm.stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `admission_tx` here lets workers drain and exit.
}

/// Backpressure fast-fail: answer 503 without waiting for a worker. The
/// single short read drains the (typically one-segment) request so closing
/// the socket does not RST the response away before the client reads it.
fn reject_503(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut drain = [0u8; 4096];
    let _ = std::io::Read::read(&mut stream, &mut drain);
    let _ = write_response(
        &mut stream,
        503,
        "application/json",
        b"{\"error\":\"admission queue full\"}",
    );
}

fn worker_loop(ctx: &Ctx, rx: &Receiver<Admitted>) {
    let mut cache = CachedSnapshot::new(&ctx.cell);
    while let Ok(admitted) = rx.recv() {
        handle_connection(ctx, &mut cache, admitted);
    }
}

/// Outcome classes for the accounting identity.
enum Outcome {
    /// A response was written (or attempted) by this worker: `served`.
    Served(u16),
    /// The request aged past its deadline before scoring: `deadline_expired`.
    Expired,
}

fn handle_connection(ctx: &Ctx, cache: &mut CachedSnapshot<Recommender>, mut adm: Admitted) {
    // Admission-to-pickup wait, credited to the Queue stage of a traced
    // request (the synthetic delay below models worker-side work, not
    // queueing).
    let queued_ns = adm.at.elapsed().as_nanos() as u64;
    let _ = adm.stream.set_read_timeout(Some(ctx.cfg.io_timeout));
    let _ = adm.stream.set_write_timeout(Some(ctx.cfg.io_timeout));
    if !ctx.cfg.synthetic_delay.is_zero() {
        // Simulated downstream latency; sits before the deadline check so
        // deadline behaviour under load is reproducible.
        std::thread::sleep(ctx.cfg.synthetic_delay);
    }

    let (endpoint, outcome) = match read_request(&mut adm.stream) {
        Ok(req) => route(ctx, cache, &mut adm, &req, queued_ns),
        Err(HttpError::Malformed(msg)) => {
            let body = format!("{{\"error\":\"{}\"}}", escape_json(msg));
            let _ = write_response(&mut adm.stream, 400, "application/json", body.as_bytes());
            (Endpoint::Other, Outcome::Served(400))
        }
        // The socket died before a request arrived; nothing can be written,
        // but the admission must still be accounted (nginx's 499).
        Err(HttpError::Io(_)) => (Endpoint::Other, Outcome::Served(499)),
    };

    let micros = adm.at.elapsed().as_micros() as u64;
    match outcome {
        Outcome::Served(status) => {
            ctx.metrics.served.fetch_add(1, Ordering::Relaxed);
            ctx.metrics.record_response(endpoint, status, micros);
        }
        Outcome::Expired => {
            ctx.metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
            ctx.metrics.record_response(endpoint, 504, micros);
        }
    }
}

fn route(
    ctx: &Ctx,
    cache: &mut CachedSnapshot<Recommender>,
    adm: &mut Admitted,
    req: &Request,
    queued_ns: u64,
) -> (Endpoint, Outcome) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/recommend") => (
            Endpoint::Recommend,
            recommend(ctx, cache, adm, req, queued_ns),
        ),
        ("POST", "/update") => (Endpoint::Update, update(ctx, adm, req)),
        ("GET", "/healthz") => (Endpoint::Healthz, healthz(ctx, cache, adm)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics_page(ctx, cache, adm)),
        ("GET", "/debug/queries") => (Endpoint::Debug, debug_queries(ctx, adm, req)),
        ("GET", "/debug/durability") => (Endpoint::Debug, debug_durability(ctx, adm)),
        ("GET", "/debug/profile") => (Endpoint::Debug, debug_profile(adm, req)),
        ("GET", "/debug/heap") => (Endpoint::Debug, debug_heap(adm)),
        ("GET", path) if path.starts_with("/debug/trace/") => {
            (Endpoint::Debug, debug_trace(ctx, adm, path))
        }
        _ => {
            let outcome = respond(adm, 404, "application/json", b"{\"error\":\"not found\"}");
            (Endpoint::Other, outcome)
        }
    }
}

fn respond(adm: &mut Admitted, status: u16, content_type: &str, body: &[u8]) -> Outcome {
    let _ = write_response(&mut adm.stream, status, content_type, body);
    Outcome::Served(status)
}

fn bad_request(adm: &mut Admitted, msg: &str) -> Outcome {
    let body = format!("{{\"error\":\"{}\"}}", escape_json(msg));
    respond(adm, 400, "application/json", body.as_bytes())
}

fn recommend(
    ctx: &Ctx,
    cache: &mut CachedSnapshot<Recommender>,
    adm: &mut Admitted,
    req: &Request,
    queued_ns: u64,
) -> Outcome {
    // --- parse everything before the deadline check: parsing is part of
    // the request's age, scoring is not allowed to start past-deadline ---
    let Some(video_str) = req.param("video") else {
        return bad_request(adm, "missing required parameter 'video'");
    };
    let Ok(video) = video_str.parse::<u64>() else {
        return bad_request(adm, "parameter 'video' must be an unsigned integer");
    };
    let k = match req.param("k") {
        None => 10usize,
        Some(s) => match s.parse::<usize>() {
            Ok(k) => k.min(ctx.cfg.max_k),
            Err(_) => return bad_request(adm, "parameter 'k' must be an unsigned integer"),
        },
    };
    let strategy = match req.param("strategy") {
        None => Strategy::CsfSarH,
        Some(s) => match parse_strategy(s) {
            Some(st) => st,
            None => {
                return bad_request(
                    adm,
                    "unknown strategy (expected cr|sr|csf|csf-sar|csf-sar-h)",
                )
            }
        },
    };
    let mut exclude = vec![VideoId(video)];
    if let Some(csv) = req.param("exclude") {
        for part in csv.split(',').filter(|p| !p.is_empty()) {
            match part.parse::<u64>() {
                Ok(id) => exclude.push(VideoId(id)),
                Err(_) => return bad_request(adm, "parameter 'exclude' must be a CSV of ids"),
            }
        }
    }
    let budget = match req.param("deadline_ms") {
        None => ctx.cfg.default_deadline,
        Some(s) => match s.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms),
            Err(_) => return bad_request(adm, "parameter 'deadline_ms' must be milliseconds"),
        },
    };

    // --- deadline gate: queue wait + parse time, measured before scoring ---
    if adm.at.elapsed() > budget {
        let _ = write_response(
            &mut adm.stream,
            504,
            "application/json",
            b"{\"error\":\"deadline expired before scoring\"}",
        );
        return Outcome::Expired;
    }

    // --- score against one pinned snapshot ---
    let snapshot = cache.get(&ctx.cell);
    let epoch = cache.epoch();
    let Some(query) = snapshot.query_for(VideoId(video)) else {
        let body = format!("{{\"error\":\"unknown video {video}\"}}");
        return respond(adm, 404, "application/json", body.as_bytes());
    };
    let (results, mut trace) = snapshot.recommend_traced(strategy, &query, k, &exclude, ctx.tracer);

    // Finish the trace: id, epoch, queue wait, end-to-end latency (stages
    // tile disjoint sub-intervals of admission-to-now, so their sum stays
    // ≤ total), then per-stage metrics and the debug ring — all before the
    // response so the echoed id always resolves.
    let trace_id = if ctx.tracer.enabled() {
        trace.id = next_trace_id();
        trace.epoch = epoch;
        trace.cell_mut(Stage::Queue).add(queued_ns);
        trace.total_ns = adm.at.elapsed().as_nanos() as u64;
        for stage in Stage::ALL {
            let cell = trace.stage(stage);
            if cell.count > 0 {
                ctx.metrics.stage_micros[stage.index()].record(cell.ns / 1_000);
            }
            // Alloc cells stay zero without the counting allocator; only
            // stages that actually allocated produce an observation.
            let alloc = trace.alloc(stage);
            if alloc.count > 0 {
                ctx.metrics.stage_alloc_bytes[stage.index()].record(alloc.bytes);
            }
        }
        // Per-tier prune accounting: `pruned` counts both tiers, so the
        // anchor tier is the difference.
        let s = &trace.stats;
        let ord = std::sync::atomic::Ordering::Relaxed;
        ctx.metrics
            .prune_anchor
            .fetch_add(s.pruned - s.pruned_embed, ord);
        ctx.metrics.prune_embed.fetch_add(s.pruned_embed, ord);
        ctx.metrics.emd_cap_aborted.fetch_add(s.cap_aborted, ord);
        ctx.metrics.emd_full_sweeps.fetch_add(s.full_sweeps, ord);
        ctx.traces.record(&trace);
        Some(trace.id)
    } else {
        None
    };

    let mut body = format!(
        "{{\"query\":{video},\"strategy\":\"{}\",\"k\":{k},\"epoch\":{epoch},",
        strategy.label()
    );
    if let Some(id) = trace_id {
        let _ = write!(body, "\"trace\":\"{id:016x}\",");
    }
    body.push_str("\"results\":[");
    for (i, scored) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"video\":{},\"score\":{},\"score_bits\":\"{:016x}\"}}",
            scored.video.0,
            scored.score,
            scored.score.to_bits()
        );
    }
    body.push_str("]}");
    match trace_id {
        Some(id) => {
            let hex = format!("{id:016x}");
            let _ = write_response_with_headers(
                &mut adm.stream,
                200,
                "application/json",
                &[("X-Trace-Id", &hex)],
                body.as_bytes(),
            );
            Outcome::Served(200)
        }
        None => respond(adm, 200, "application/json", body.as_bytes()),
    }
}

fn debug_queries(ctx: &Ctx, adm: &mut Admitted, req: &Request) -> Outcome {
    let recent_n = match req.param("n") {
        None => 16usize,
        Some(s) => match s.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return bad_request(adm, "parameter 'n' must be an unsigned integer"),
        },
    };
    let slowest_n = match req.param("slow") {
        None => 8usize,
        Some(s) => match s.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return bad_request(adm, "parameter 'slow' must be an unsigned integer"),
        },
    };
    let body = ctx
        .traces
        .queries_page(recent_n, slowest_n, ctx.tracer.enabled());
    respond(adm, 200, "application/json", body.as_bytes())
}

fn debug_trace(ctx: &Ctx, adm: &mut Admitted, path: &str) -> Outcome {
    let id_str = &path["/debug/trace/".len()..];
    let Ok(id) = u64::from_str_radix(id_str, 16) else {
        return bad_request(
            adm,
            "trace id must be the hex id a /recommend response echoed",
        );
    };
    match ctx.traces.find(id) {
        Some(trace) => respond(adm, 200, "application/json", trace_json(&trace).as_bytes()),
        None => {
            let body = format!(
                "{{\"error\":\"trace {id:016x} not found (expired from the ring, or tracing disabled)\"}}"
            );
            respond(adm, 404, "application/json", body.as_bytes())
        }
    }
}

fn debug_durability(ctx: &Ctx, adm: &mut Admitted) -> Outcome {
    let body = match &ctx.durability {
        Some(status) => status.debug_json(),
        None => "{\"enabled\":false}".to_string(),
    };
    respond(adm, 200, "application/json", body.as_bytes())
}

/// `GET /debug/profile?seconds=&hz=` — on-demand sampling CPU profile of
/// the whole process, answered as collapsed ("folded") stacks: one
/// `frame;frame;...;leaf count` line per distinct stack, the input format
/// of flame-graph tooling. The capture occupies this worker for the window
/// (clamped to [`viderec_prof::MAX_SECONDS`]/[`viderec_prof::MAX_HZ`])
/// while sibling workers keep serving; a second concurrent capture is
/// refused with 409 so SIGPROF timer ownership stays unambiguous.
fn debug_profile(adm: &mut Admitted, req: &Request) -> Outcome {
    let seconds = match req.param("seconds") {
        None => 2u64,
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => return bad_request(adm, "parameter 'seconds' must be a positive integer"),
        },
    };
    let hz = match req.param("hz") {
        None => viderec_prof::DEFAULT_HZ,
        Some(s) => match s.parse::<u32>() {
            Ok(n) if n >= 1 => n,
            _ => return bad_request(adm, "parameter 'hz' must be a positive integer"),
        },
    };
    match viderec_prof::capture(Duration::from_secs(seconds), hz) {
        Ok(profile) => {
            let mut body = String::with_capacity(4096);
            let _ = writeln!(
                body,
                "# samples={} dropped={} hz={} window_ms={}",
                profile.samples, profile.dropped, profile.hz, profile.window_ms
            );
            body.push_str(&profile.render_collapsed());
            respond(adm, 200, "text/plain; charset=utf-8", body.as_bytes())
        }
        Err(viderec_prof::CaptureError::Busy) => respond(
            adm,
            409,
            "application/json",
            b"{\"error\":\"a profile capture is already running\"}",
        ),
        Err(e) => {
            let body = format!("{{\"error\":\"{}\"}}", escape_json(&e.to_string()));
            respond(adm, 503, "application/json", body.as_bytes())
        }
    }
}

/// `GET /debug/heap` — live allocator counters as JSON. All-zero with
/// `"counting_allocator_installed":false` unless the binary installs
/// [`viderec_prof::CountingAlloc`] as its `#[global_allocator]` (the
/// shipped `viderec-serve` binary does).
fn debug_heap(adm: &mut Admitted) -> Outcome {
    respond(
        adm,
        200,
        "application/json",
        viderec_prof::heap_json().as_bytes(),
    )
}

fn update(ctx: &Ctx, adm: &mut Admitted, req: &Request) -> Outcome {
    let Ok(body_str) = std::str::from_utf8(&req.body) else {
        return bad_request(adm, "update body must be UTF-8");
    };
    let events = match parse_update_body(body_str) {
        Ok(events) => events,
        Err(msg) => return bad_request(adm, &msg),
    };
    let accepted = events.len();
    if accepted == 0 {
        return respond(
            adm,
            202,
            "application/json",
            b"{\"accepted\":0,\"note\":\"empty batch\"}",
        );
    }
    // On a durable server the 202 is a *durable* ack: the worker parks on a
    // per-batch channel until the maintainer has framed (and, per policy,
    // fsynced) the batch into the WAL — append-before-apply, group-committed
    // with whatever else the maintainer drained.
    let (ack_tx, ack_rx) = if ctx.durability.is_some() {
        let (tx, rx) = channel::bounded::<u64>(1);
        (Some(tx), Some(rx))
    } else {
        (None, None)
    };
    let batch = QueuedBatch {
        at: Instant::now(),
        events,
        ack: ack_tx,
    };
    match ctx.update_tx.try_send(batch) {
        Ok(()) => {
            ctx.metrics.updates_enqueued.fetch_add(1, Ordering::Relaxed);
            let Some(rx) = ack_rx else {
                let body = format!(
                    "{{\"accepted\":{accepted},\"epoch_at_enqueue\":{}}}",
                    ctx.cell.epoch()
                );
                return respond(adm, 202, "application/json", body.as_bytes());
            };
            match rx.recv_timeout(DURABLE_ACK_TIMEOUT) {
                Ok(lsn) => {
                    let body = format!(
                        "{{\"accepted\":{accepted},\"durable_lsn\":{lsn},\"epoch_at_enqueue\":{}}}",
                        ctx.cell.epoch()
                    );
                    respond(adm, 202, "application/json", body.as_bytes())
                }
                // Timeout, or the maintainer dropped the ack after a WAL
                // write failure: the batch may still apply, but durability
                // cannot be promised — the client must not treat it as
                // acknowledged.
                Err(_) => {
                    ctx.metrics.wal_ack_failures.fetch_add(1, Ordering::Relaxed);
                    respond(
                        adm,
                        503,
                        "application/json",
                        b"{\"error\":\"durable ack unavailable\"}",
                    )
                }
            }
        }
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
            ctx.metrics.updates_rejected.fetch_add(1, Ordering::Relaxed);
            respond(
                adm,
                503,
                "application/json",
                b"{\"error\":\"update queue full\"}",
            )
        }
    }
}

fn healthz(ctx: &Ctx, cache: &mut CachedSnapshot<Recommender>, adm: &mut Admitted) -> Outcome {
    let snapshot = cache.get(&ctx.cell);
    let body = format!(
        "{{\"status\":\"ok\",\"epoch\":{},\"videos\":{},\"users\":{},\"admission_queue_depth\":{},\"update_queue_depth\":{}}}",
        cache.epoch(),
        snapshot.num_videos(),
        snapshot.num_users(),
        ctx.admission_probe.len(),
        ctx.update_tx.len(),
    );
    respond(adm, 200, "application/json", body.as_bytes())
}

fn metrics_page(ctx: &Ctx, cache: &mut CachedSnapshot<Recommender>, adm: &mut Admitted) -> Outcome {
    let videos = cache.get(&ctx.cell).num_videos();
    let proc = viderec_prof::read_self();
    let heap = viderec_prof::heap_stats();
    let page = ctx.metrics.render(&Gauges {
        epoch: ctx.cell.epoch(),
        videos,
        admission_depth: ctx.admission_probe.len(),
        update_depth: ctx.update_tx.len(),
        snapshot_age_micros: ctx.cell.age_micros(),
        traces_recorded: ctx.traces.recorded(),
        traces_dropped: ctx.traces.dropped(),
        trace_capacity: ctx.traces.capacity(),
        tracing_enabled: ctx.tracer.enabled(),
        durability: ctx.durability.as_ref().map(|d| DurabilitySample {
            appended_lsn: d.gate.appended(),
            acked_lsn: d.gate.acked(),
            synced_lsn: d.synced_lsn.load(Ordering::Relaxed),
            snapshot_lsn: d.snapshot_lsn.load(Ordering::Relaxed),
            segments: d.segment_count.load(Ordering::Relaxed),
            failed: d.failed.load(Ordering::Relaxed) != 0,
        }),
        process: ProcessSample {
            rss_bytes: proc.rss_bytes,
            utime_secs: proc.utime_secs,
            stime_secs: proc.stime_secs,
            threads: proc.threads,
            voluntary_ctxt_switches: proc.voluntary_ctxt_switches,
            heap_live_bytes: heap.live_bytes,
            heap_live_allocs: heap.live_allocs,
            heap_total_bytes: heap.total_bytes,
            heap_total_allocs: heap.total_allocs,
            heap_counting: viderec_prof::counting_installed(),
        },
    });
    respond(adm, 200, "text/plain; version=0.0.4", page.as_bytes())
}

fn maintainer_loop(
    mut master: Recommender,
    update_rx: Receiver<QueuedBatch>,
    cell: &SnapshotCell<Recommender>,
    metrics: &Metrics,
    tracer: Tracer,
    mut durable: Option<DurableLog>,
) {
    let mut last_acked = durable
        .as_ref()
        .map(|d| d.status().gate.acked())
        .unwrap_or(0);
    // `recv` returns Err only when every sender is gone *and* the queue is
    // drained, so shutdown applies every accepted batch before retiring.
    while let Ok(first) = update_rx.recv() {
        // Heap bytes this round allocates (WAL framing + applies); exact
        // because the maintainer is single-threaded and the counters are
        // thread-local.
        let round_alloc = tracer.enabled().then(AllocSnapshot::take);
        let mut batches = vec![first];
        while let Ok(more) = update_rx.try_recv() {
            batches.push(more);
        }
        let mut drained_events = 0u64;
        for batch in batches {
            if tracer.enabled() {
                metrics
                    .update_queue_wait
                    .record(batch.at.elapsed().as_micros() as u64);
            }
            drained_events += batch.events.len() as u64;
            // Append-before-apply: frame the whole batch into the WAL (and
            // fsync per policy) before any event mutates the master. The
            // gate inside `append_batch` publishes `appended` before
            // `acked` ever covers the batch — the invariant `crates/check`
            // model-checks, and the reason a crash can only lose
            // unacknowledged work.
            let mut batch_lsn = 0u64;
            if let Some(d) = durable.as_mut() {
                match d.append_batch(&batch.events, metrics) {
                    Ok(lsn) => batch_lsn = lsn,
                    Err(_) => {
                        // WAL write failure: availability over durability —
                        // keep applying so reads stay fresh, but never ack
                        // again (dropping `batch.ack` turns the waiting
                        // worker's 202 into a 503).
                        metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
                        d.mark_failed();
                        d.publish_status();
                        durable = None;
                    }
                }
            }
            for event in batch.events {
                let kind = event_kind_index(&event);
                let span = tracer.start();
                match master.apply_event(event) {
                    Ok(_) => {
                        metrics.events_applied.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        metrics.events_failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if let Some(ns) = span.elapsed_ns() {
                    metrics.update_apply[kind].record(ns / 1_000);
                }
            }
            if let Some(d) = durable.as_ref() {
                d.mark_acked(batch_lsn);
                last_acked = batch_lsn;
                if let Some(ack) = batch.ack {
                    // The worker may have timed out and gone; that's its
                    // loss, not ours.
                    let _ = ack.try_send(batch_lsn);
                }
            }
        }
        if tracer.enabled() {
            metrics.update_batch_events.record(drained_events);
        }
        if let Some(snap) = round_alloc {
            metrics.update_batch_alloc_bytes.record(snap.delta().bytes);
        }
        // Clone-for-publish: readers keep the old snapshot until they next
        // observe the epoch bump; nothing is ever mutated in place under a
        // reader.
        let span = tracer.start();
        let next = Arc::new(master.clone());
        if let Some(ns) = span.elapsed_ns() {
            metrics.snapshot_clone.record(ns / 1_000);
        }
        let span = tracer.start();
        cell.publish(next);
        if let Some(ns) = span.elapsed_ns() {
            metrics.snapshot_publish.record(ns / 1_000);
        }
        metrics.snapshots_published.fetch_add(1, Ordering::Relaxed);
        // Checkpoint cadence, after publish so readers never wait on it.
        if let Some(d) = durable.as_mut() {
            if d.maybe_checkpoint(last_acked, false, metrics).is_err() {
                metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
                d.mark_failed();
            }
            d.publish_status();
        }
    }
    // Graceful shutdown: every accepted batch is applied and acked above;
    // flush + fsync the WAL tail first, then publish the final checkpoint —
    // a clean restart must lose nothing even with fsync=off.
    if let Some(d) = durable.as_mut() {
        d.finalize(last_acked, metrics);
    }
}

/// Parses a strategy label (case-insensitive; `_` and `-` interchangeable).
pub fn parse_strategy(s: &str) -> Option<Strategy> {
    match s.to_ascii_lowercase().replace('_', "-").as_str() {
        "cr" => Some(Strategy::Cr),
        "sr" => Some(Strategy::Sr),
        "csf" => Some(Strategy::Csf),
        "csf-sar" => Some(Strategy::CsfSar),
        "csf-sar-h" | "csfsarh" => Some(Strategy::CsfSarH),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels_parse_back() {
        for s in [
            Strategy::Cr,
            Strategy::Sr,
            Strategy::Csf,
            Strategy::CsfSar,
            Strategy::CsfSarH,
        ] {
            assert_eq!(parse_strategy(s.label()), Some(s));
            assert_eq!(parse_strategy(&s.label().to_lowercase()), Some(s));
        }
        assert_eq!(parse_strategy("csf_sar_h"), Some(Strategy::CsfSarH));
        assert_eq!(parse_strategy("bogus"), None);
    }
}
