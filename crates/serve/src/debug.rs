//! Debug introspection over recent query traces.
//!
//! Every traced `/recommend` request serialises its [`QueryTrace`] into a
//! fixed-capacity lock-free ring ([`viderec_trace::TraceRing`]) on the way
//! out. Two endpoints read it back:
//!
//! * `GET /debug/queries` — the most recent and the slowest recorded traces,
//!   as JSON with full stage breakdowns;
//! * `GET /debug/trace/<id>` — one trace by its hex id (the id every traced
//!   response echoes in its `trace` field and `X-Trace-Id` header).
//!
//! The ring is best-effort by design: writers never block a worker (a push
//! colliding with an in-flight write is dropped and counted), records are
//! overwritten oldest-first, and a reader observing a torn slot simply skips
//! it. A trace id therefore resolves *while the record is still in the ring*
//! — after `capacity` further queries it is gone, which is the intended
//! semantics for a debugging window, not an audit log.

use std::fmt::Write as _;
use viderec_core::{QueryTrace, Stage};
use viderec_trace::TraceRing;

/// The server's ring of recent [`QueryTrace`] records.
pub struct TraceStore {
    ring: TraceRing<{ QueryTrace::WORDS }>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceStore {
    /// A store keeping the most recent `capacity` traces (`capacity >= 1`;
    /// 0 is clamped to 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: TraceRing::new(capacity.max(1)),
        }
    }

    /// Number of ring slots.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Total traces pushed (successful or dropped).
    pub fn recorded(&self) -> u64 {
        self.ring.pushes()
    }

    /// Traces dropped on a ring-slot collision.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Publishes one trace (lock-free; `false` on a slot collision).
    pub fn record(&self, trace: &QueryTrace) -> bool {
        self.ring.push(&trace.to_words())
    }

    /// The trace with the given id, while it is still in the ring.
    pub fn find(&self, id: u64) -> Option<QueryTrace> {
        self.ring
            .find(|w| w[0] == id)
            .and_then(|w| QueryTrace::from_words(&w))
    }

    fn all(&self) -> Vec<QueryTrace> {
        self.ring
            .snapshot()
            .iter()
            .filter_map(QueryTrace::from_words)
            .collect()
    }

    /// The most recent `n` traces, newest first (ids are assigned from a
    /// monotone counter, so id order is arrival order).
    pub fn recent(&self, n: usize) -> Vec<QueryTrace> {
        let mut traces = self.all();
        traces.sort_by_key(|t| std::cmp::Reverse(t.id));
        traces.truncate(n);
        traces
    }

    /// The `n` slowest traces in the ring, slowest first (ties broken
    /// newest-first).
    pub fn slowest(&self, n: usize) -> Vec<QueryTrace> {
        let mut traces = self.all();
        traces.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(b.id.cmp(&a.id)));
        traces.truncate(n);
        traces
    }

    /// The `GET /debug/queries` document.
    pub fn queries_page(&self, recent_n: usize, slowest_n: usize, enabled: bool) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"enabled\":{enabled},\"capacity\":{},\"recorded\":{},\"dropped\":{},\"recent\":[",
            self.capacity(),
            self.recorded(),
            self.dropped(),
        );
        for (i, t) in self.recent(recent_n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&trace_json(t));
        }
        out.push_str("],\"slowest\":[");
        for (i, t) in self.slowest(slowest_n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&trace_json(t));
        }
        out.push_str("]}");
        out
    }
}

/// Renders one trace as the JSON document both debug endpoints use: totals,
/// pruning counters, the per-stage
/// `{micros, count, alloc_count, alloc_bytes}` breakdown and the per-shard
/// breakdown of parallel scans. Alloc fields are zero unless the binary
/// installs the counting allocator.
pub fn trace_json(t: &QueryTrace) -> String {
    let scanned = t.stats.scanned;
    let prune_rate = if scanned == 0 {
        0.0
    } else {
        t.stats.pruned as f64 / scanned as f64
    };
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"trace\":\"{:016x}\",\"epoch\":{},\"strategy\":\"{}\",\"k\":{},\
         \"total_micros\":{},\"stage_sum_micros\":{},\"gathered\":{},\"excluded\":{},\
         \"scanned\":{scanned},\"pruned\":{},\"exact_evals\":{},\"prune_rate\":{prune_rate:.4},\
         \"pruned_embed\":{},\"cap_aborted\":{},\"full_sweeps\":{},\
         \"corpus\":{},\"promoted\":{},\"widen_rounds\":{},\"gate\":{},\
         \"stages\":{{",
        t.id,
        t.epoch,
        t.strategy.label(),
        t.k,
        t.total_ns / 1_000,
        t.stage_sum_ns() / 1_000,
        t.gathered,
        t.excluded,
        t.stats.pruned,
        t.stats.exact_evals,
        t.stats.pruned_embed,
        t.stats.cap_aborted,
        t.stats.full_sweeps,
        t.corpus,
        t.promoted,
        t.widen_rounds,
        t.gate,
    );
    for (i, stage) in Stage::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cell = t.stage(stage);
        let alloc = t.alloc(stage);
        let _ = write!(
            out,
            "\"{}\":{{\"micros\":{},\"count\":{},\"alloc_count\":{},\"alloc_bytes\":{}}}",
            stage.label(),
            cell.ns / 1_000,
            cell.count,
            alloc.count,
            alloc.bytes
        );
    }
    let _ = write!(out, "}},\"shards\":{},\"shard_breakdown\":[", t.shards);
    for (i, shard) in t.shard[..t.shards_recorded as usize].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"micros\":{},\"exact_evals\":{},\"pruned\":{}}}",
            shard.ns / 1_000,
            shard.exact_evals,
            shard.pruned
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use viderec_core::{PruneStats, ShardTrace, Strategy};

    fn trace(id: u64, total_ns: u64) -> QueryTrace {
        let mut t = QueryTrace::new(Strategy::CsfSarH, 10);
        t.id = id;
        t.epoch = 3;
        t.total_ns = total_ns;
        t.gathered = 100;
        t.excluded = 1;
        t.stats = PruneStats {
            scanned: 99,
            pruned: 80,
            exact_evals: 19,
            pruned_embed: 7,
            cap_aborted: 30,
            full_sweeps: 200,
        };
        t.cell_mut(Stage::Emd).add(total_ns / 2);
        *t.cells_mut(Stage::Emd).1 = viderec_core::trace::AllocCell {
            count: 2,
            bytes: 512,
        };
        t.corpus = 120;
        t.promoted = 5;
        t.widen_rounds = 1;
        t.gate = 2;
        t.shards = 2;
        t.shards_recorded = 2;
        t.shard[0] = ShardTrace {
            ns: 1000,
            exact_evals: 9,
            pruned: 40,
        };
        t
    }

    #[test]
    fn record_find_and_eviction() {
        let store = TraceStore::new(4);
        for i in 1..=6u64 {
            assert!(store.record(&trace(i, i * 1000)));
        }
        assert_eq!(store.recorded(), 6);
        assert_eq!(store.dropped(), 0);
        // The oldest two were overwritten.
        assert!(store.find(1).is_none());
        assert!(store.find(2).is_none());
        let found = store.find(5).expect("still in the ring");
        assert_eq!(found.id, 5);
        assert_eq!(found.stats.pruned, 80);
        assert!(store.find(77).is_none());
    }

    #[test]
    fn recent_is_newest_first_and_slowest_is_by_total() {
        let store = TraceStore::new(8);
        // Arrival order 1..=5, but id 2 is the slowest.
        for (id, ns) in [
            (1u64, 10_000u64),
            (2, 90_000),
            (3, 5_000),
            (4, 50_000),
            (5, 1_000),
        ] {
            store.record(&trace(id, ns));
        }
        let recent: Vec<u64> = store.recent(3).iter().map(|t| t.id).collect();
        assert_eq!(recent, vec![5, 4, 3]);
        let slowest: Vec<u64> = store.slowest(2).iter().map(|t| t.id).collect();
        assert_eq!(slowest, vec![2, 4]);
        // Asking for more than recorded returns everything.
        assert_eq!(store.recent(100).len(), 5);
    }

    #[test]
    fn trace_json_has_the_full_breakdown() {
        let t = trace(0xAB, 2_000_000);
        let json = trace_json(&t);
        assert!(json.contains("\"trace\":\"00000000000000ab\""), "{json}");
        assert!(json.contains("\"strategy\":\"CSF-SAR-H\""), "{json}");
        assert!(json.contains("\"total_micros\":2000"), "{json}");
        assert!(json.contains("\"stage_sum_micros\":1000"), "{json}");
        assert!(
            json.contains(
                "\"emd\":{\"micros\":1000,\"count\":1,\"alloc_count\":2,\"alloc_bytes\":512}"
            ),
            "{json}"
        );
        assert!(
            json.contains(
                "\"queue\":{\"micros\":0,\"count\":0,\"alloc_count\":0,\"alloc_bytes\":0}"
            ),
            "{json}"
        );
        assert!(json.contains("\"prune_rate\":0.8081"), "{json}");
        assert!(
            json.contains("\"pruned_embed\":7,\"cap_aborted\":30,\"full_sweeps\":200"),
            "{json}"
        );
        assert!(
            json.contains("\"corpus\":120,\"promoted\":5,\"widen_rounds\":1,\"gate\":2"),
            "{json}"
        );
        assert!(json.contains("\"shards\":2"), "{json}");
        assert!(
            json.contains("\"shard_breakdown\":[{\"micros\":1,\"exact_evals\":9,\"pruned\":40}"),
            "{json}"
        );
    }

    #[test]
    fn queries_page_reports_ring_state() {
        let store = TraceStore::new(4);
        assert_eq!(
            store.queries_page(8, 8, true),
            "{\"enabled\":true,\"capacity\":4,\"recorded\":0,\"dropped\":0,\
             \"recent\":[],\"slowest\":[]}"
        );
        store.record(&trace(9, 500));
        let page = store.queries_page(8, 8, true);
        assert!(page.contains("\"recorded\":1"), "{page}");
        assert!(page.contains("\"trace\":\"0000000000000009\""), "{page}");
    }
}
