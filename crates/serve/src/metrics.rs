//! Lock-free serving metrics.
//!
//! Every counter is a plain `AtomicU64` and every latency histogram is a
//! fixed array of power-of-two buckets, so recording never allocates, never
//! locks, and never blocks a worker. The registry renders to a
//! Prometheus-style text page at `/metrics`.
//!
//! The accounting identity the e2e suite pins:
//!
//! ```text
//! requests_submitted == requests_served + requests_rejected + requests_deadline_expired
//! ```
//!
//! * `submitted` — counted by the acceptor for every accepted connection;
//! * `rejected` — fast-fail 503s written by the acceptor when the admission
//!   queue is full (backpressure);
//! * `deadline_expired` — 504s written by a worker whose request aged past
//!   its deadline before scoring started;
//! * `served` — every other worker-written response, including error
//!   responses (400/404/update-queue 503s).

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket count: bucket `i` holds latencies in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 holds `< 1 µs`), so 40 buckets
/// cover far beyond any realistic request.
const BUCKETS: usize = 40;

/// A lock-free log2-bucketed latency histogram (microsecond domain).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(micros: u64) -> usize {
        ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Maximum observed latency in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// holding the rank — accurate to the bucket's factor-of-two width,
    /// which is the usual precision/footprint trade of log-bucketed
    /// histograms. Returns 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i: 2^i - 1 µs (bucket 0 is "< 1 µs").
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max_micros()
    }
}

/// The served endpoints, as metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /recommend`
    Recommend,
    /// `POST /update`
    Update,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404s, malformed requests).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 5] = [
        Endpoint::Recommend,
        Endpoint::Update,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        match self {
            Endpoint::Recommend => 0,
            Endpoint::Update => 1,
            Endpoint::Healthz => 2,
            Endpoint::Metrics => 3,
            Endpoint::Other => 4,
        }
    }

    /// The metric label.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Recommend => "recommend",
            Endpoint::Update => "update",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }
}

/// Per-endpoint hit/error counters and a latency histogram.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Responses written for this endpoint.
    pub hits: AtomicU64,
    /// Of which carried a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Admission-to-response latency.
    pub latency: Histogram,
}

/// The server-wide metrics registry. All members are lock-free.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted by the acceptor.
    pub submitted: AtomicU64,
    /// Responses written by workers (any status except 503-at-admission and
    /// 504-deadline).
    pub served: AtomicU64,
    /// Fast-fail 503s at admission (queue full).
    pub rejected: AtomicU64,
    /// 504s for requests whose deadline expired before scoring.
    pub deadline_expired: AtomicU64,
    /// Update batches accepted into the maintenance queue.
    pub updates_enqueued: AtomicU64,
    /// Update batches bounced with 503 (update queue full).
    pub updates_rejected: AtomicU64,
    /// Individual [`viderec_core::UpdateEvent`]s applied by the writer.
    pub events_applied: AtomicU64,
    /// Events the writer rejected (e.g. duplicate video ingest).
    pub events_failed: AtomicU64,
    /// Snapshots published (≥ 1 once the first update lands).
    pub snapshots_published: AtomicU64,
    endpoints: [EndpointMetrics; 5],
}

impl Metrics {
    /// Records a worker-written response.
    pub fn record_response(&self, endpoint: Endpoint, status: u16, micros: u64) {
        let ep = &self.endpoints[endpoint.index()];
        ep.hits.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            ep.errors.fetch_add(1, Ordering::Relaxed);
        }
        ep.latency.record(micros);
    }

    /// The per-endpoint slot (rendering and tests).
    pub fn endpoint(&self, endpoint: Endpoint) -> &EndpointMetrics {
        &self.endpoints[endpoint.index()]
    }

    /// Renders the Prometheus-style text page. `epoch`, `videos` and the
    /// live queue depths are sampled by the caller (they belong to the
    /// snapshot cell and the channels, not to this registry).
    pub fn render(
        &self,
        epoch: u64,
        videos: usize,
        admission_depth: usize,
        update_depth: usize,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let _ = writeln!(out, "serve_requests_submitted_total {}", c(&self.submitted));
        let _ = writeln!(out, "serve_requests_served_total {}", c(&self.served));
        let _ = writeln!(out, "serve_requests_rejected_total {}", c(&self.rejected));
        let _ = writeln!(
            out,
            "serve_requests_deadline_expired_total {}",
            c(&self.deadline_expired)
        );
        let _ = writeln!(
            out,
            "serve_update_batches_enqueued_total {}",
            c(&self.updates_enqueued)
        );
        let _ = writeln!(
            out,
            "serve_update_batches_rejected_total {}",
            c(&self.updates_rejected)
        );
        let _ = writeln!(
            out,
            "serve_events_applied_total {}",
            c(&self.events_applied)
        );
        let _ = writeln!(out, "serve_events_failed_total {}", c(&self.events_failed));
        let _ = writeln!(
            out,
            "serve_snapshots_published_total {}",
            c(&self.snapshots_published)
        );
        let _ = writeln!(out, "serve_snapshot_epoch {epoch}");
        let _ = writeln!(out, "serve_corpus_videos {videos}");
        let _ = writeln!(out, "serve_admission_queue_depth {admission_depth}");
        let _ = writeln!(out, "serve_update_queue_depth {update_depth}");
        for ep in Endpoint::ALL {
            let m = self.endpoint(ep);
            let label = ep.label();
            let _ = writeln!(
                out,
                "serve_responses_total{{endpoint=\"{label}\"}} {}",
                c(&m.hits)
            );
            let _ = writeln!(
                out,
                "serve_response_errors_total{{endpoint=\"{label}\"}} {}",
                c(&m.errors)
            );
            for (q, name) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                let _ = writeln!(
                    out,
                    "serve_latency_micros{{endpoint=\"{label}\",quantile=\"{name}\"}} {}",
                    m.latency.quantile_micros(q)
                );
            }
            let _ = writeln!(
                out,
                "serve_latency_micros{{endpoint=\"{label}\",quantile=\"mean\"}} {}",
                m.latency.mean_micros()
            );
            let _ = writeln!(
                out,
                "serve_latency_micros{{endpoint=\"{label}\",quantile=\"max\"}} {}",
                m.latency.max_micros()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bracket_the_data() {
        let h = Histogram::default();
        for micros in [3u64, 5, 9, 120, 900, 1500, 15_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 7);
        let p50 = h.quantile_micros(0.5);
        let p95 = h.quantile_micros(0.95);
        let p99 = h.quantile_micros(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Upper bounds: each quantile is within 2x of a real observation.
        assert!((9..=2 * 120).contains(&p50), "p50={p50}");
        assert!((15_000 / 2..=2 * 15_000).contains(&p99), "p99={p99}");
        assert_eq!(h.max_micros(), 15_000);
        assert!(h.mean_micros() > 0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn render_contains_the_accounting_counters() {
        let m = Metrics::default();
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.served.fetch_add(2, Ordering::Relaxed);
        m.rejected.fetch_add(1, Ordering::Relaxed);
        m.record_response(Endpoint::Recommend, 200, 840);
        m.record_response(Endpoint::Recommend, 404, 12);
        let page = m.render(7, 42, 1, 0);
        assert!(page.contains("serve_requests_submitted_total 3"));
        assert!(page.contains("serve_requests_served_total 2"));
        assert!(page.contains("serve_requests_rejected_total 1"));
        assert!(page.contains("serve_snapshot_epoch 7"));
        assert!(page.contains("serve_corpus_videos 42"));
        assert!(page.contains("serve_responses_total{endpoint=\"recommend\"} 2"));
        assert!(page.contains("serve_response_errors_total{endpoint=\"recommend\"} 1"));
        assert!(page.contains("quantile=\"p99\""));
    }
}
