//! Lock-free serving metrics.
//!
//! Every counter is a plain `AtomicU64` and every latency histogram is a
//! fixed array of power-of-two buckets, so recording never allocates, never
//! locks, and never blocks a worker. The registry renders to a Prometheus
//! text page at `/metrics` following the exposition conventions:
//!
//! * every family carries `# HELP` and `# TYPE` lines;
//! * per-endpoint latency is a `summary` (`quantile="0.5|0.95|0.99"` plus
//!   `_sum`/`_count`), with the observed maximum as a separate gauge;
//! * the per-stage query timings and the update-pipeline timings are native
//!   `histogram` families: cumulative `_bucket{le=...}` series over the log2
//!   bucket bounds (only non-empty buckets are emitted), `+Inf`, `_sum`,
//!   `_count`.
//!
//! The accounting identity the e2e suite pins:
//!
//! ```text
//! requests_submitted == requests_served + requests_rejected + requests_deadline_expired
//! ```
//!
//! * `submitted` — counted by the acceptor for every accepted connection;
//! * `rejected` — fast-fail 503s written by the acceptor when the admission
//!   queue is full (backpressure);
//! * `deadline_expired` — 504s written by a worker whose request aged past
//!   its deadline before scoring started;
//! * `served` — every other worker-written response, including error
//!   responses (400/404/update-queue 503s).

use std::sync::atomic::{AtomicU64, Ordering};
use viderec_core::{Stage, NUM_STAGES};

/// Histogram bucket count: bucket `i` holds observations in
/// `[2^(i-1), 2^i)` (bucket 0 holds the value 0), so 40 buckets cover far
/// beyond any realistic request latency in microseconds.
pub const BUCKETS: usize = 40;

/// Number of update-event kinds the apply-latency family distinguishes.
pub const UPDATE_KINDS: usize = 3;

/// Metric labels of the update-event kinds, indexed by
/// [`crate::wire::event_kind_index`].
pub const UPDATE_KIND_LABELS: [&str; UPDATE_KINDS] = ["comments", "ingest", "age"];

/// A lock-free log2-bucketed latency histogram (microsecond domain).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(micros: u64) -> usize {
        ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`0` for bucket 0, `2^i - 1`
    /// above; the top bucket additionally absorbs everything larger).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros().checked_div(self.count()).unwrap_or(0)
    }

    /// Maximum observed latency in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// holding the rank — accurate to the bucket's factor-of-two width,
    /// which is the usual precision/footprint trade of log-bucketed
    /// histograms. Returns 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        self.max_micros()
    }
}

/// The served endpoints, as metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /recommend`
    Recommend,
    /// `POST /update`
    Update,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /debug/queries` and `GET /debug/trace/<id>`
    Debug,
    /// Anything else (404s, malformed requests).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 6] = [
        Endpoint::Recommend,
        Endpoint::Update,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Debug,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        match self {
            Endpoint::Recommend => 0,
            Endpoint::Update => 1,
            Endpoint::Healthz => 2,
            Endpoint::Metrics => 3,
            Endpoint::Debug => 4,
            Endpoint::Other => 5,
        }
    }

    /// The metric label.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Recommend => "recommend",
            Endpoint::Update => "update",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Debug => "debug",
            Endpoint::Other => "other",
        }
    }
}

/// Per-endpoint hit/error counters and a latency histogram.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Responses written for this endpoint.
    pub hits: AtomicU64,
    /// Of which carried a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Admission-to-response latency.
    pub latency: Histogram,
}

/// Point-in-time durability gauges, sampled from the shared
/// [`crate::durability::DurabilityStatus`] block at scrape time (absent when
/// the server runs without a data dir).
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilitySample {
    /// Highest LSN framed into the WAL.
    pub appended_lsn: u64,
    /// Highest LSN applied and acknowledged.
    pub acked_lsn: u64,
    /// Highest LSN known fsynced to stable storage.
    pub synced_lsn: u64,
    /// LSN covered by the newest published snapshot.
    pub snapshot_lsn: u64,
    /// Live WAL segment files.
    pub segments: u64,
    /// Whether a WAL write failed and durable acks stopped.
    pub failed: bool,
}

/// Point-in-time process and heap telemetry, sampled by the caller at
/// scrape time from `/proc/self/{stat,status}` (via `viderec_prof`) and the
/// counting allocator's global counters. Plain values, not a dependency on
/// the prof crate: the registry stays testable with synthetic fixtures.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcessSample {
    /// Resident set size in bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// User-mode CPU seconds consumed since process start.
    pub utime_secs: f64,
    /// Kernel-mode CPU seconds consumed since process start.
    pub stime_secs: f64,
    /// Kernel threads in the process.
    pub threads: u64,
    /// Voluntary context switches (blocking waits) since start.
    pub voluntary_ctxt_switches: u64,
    /// Live heap bytes per the counting allocator (0 when not installed).
    pub heap_live_bytes: u64,
    /// Live heap allocations per the counting allocator.
    pub heap_live_allocs: u64,
    /// Heap bytes requested since start per the counting allocator.
    pub heap_total_bytes: u64,
    /// Heap allocations since start per the counting allocator.
    pub heap_total_allocs: u64,
    /// Whether the counting allocator is installed as `#[global_allocator]`.
    pub heap_counting: bool,
}

/// Point-in-time gauge values sampled by the caller at scrape time — they
/// belong to the snapshot cell, the channels and the trace ring, not to this
/// registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Corpus size of the published snapshot.
    pub videos: usize,
    /// Admission queue depth.
    pub admission_depth: usize,
    /// Update queue depth.
    pub update_depth: usize,
    /// Microseconds since the last snapshot publication.
    pub snapshot_age_micros: u64,
    /// Query traces pushed into the debug ring so far.
    pub traces_recorded: u64,
    /// Query traces dropped on a ring-slot collision.
    pub traces_dropped: u64,
    /// Capacity of the debug trace ring.
    pub trace_capacity: usize,
    /// Whether per-query tracing is enabled.
    pub tracing_enabled: bool,
    /// Durability gauges, when the server runs with a data dir.
    pub durability: Option<DurabilitySample>,
    /// Process and heap telemetry.
    pub process: ProcessSample,
}

/// The server-wide metrics registry. All members are lock-free.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted by the acceptor.
    pub submitted: AtomicU64,
    /// Responses written by workers (any status except 503-at-admission and
    /// 504-deadline).
    pub served: AtomicU64,
    /// Fast-fail 503s at admission (queue full).
    pub rejected: AtomicU64,
    /// 504s for requests whose deadline expired before scoring.
    pub deadline_expired: AtomicU64,
    /// Update batches accepted into the maintenance queue.
    pub updates_enqueued: AtomicU64,
    /// Update batches bounced with 503 (update queue full).
    pub updates_rejected: AtomicU64,
    /// Individual [`viderec_core::UpdateEvent`]s applied by the writer.
    pub events_applied: AtomicU64,
    /// Events the writer rejected (e.g. duplicate video ingest).
    pub events_failed: AtomicU64,
    /// Snapshots published (≥ 1 once the first update lands).
    pub snapshots_published: AtomicU64,
    /// Candidates pruned by the anchor-bound tier (ceiling sort + tail
    /// prune) across traced `/recommend` queries.
    pub prune_anchor: AtomicU64,
    /// Candidates pruned by the cached-embedding recheck tier.
    pub prune_embed: AtomicU64,
    /// Capped EMD sweeps aborted early (threshold exceeded or quantized
    /// screen fired) across traced queries.
    pub emd_cap_aborted: AtomicU64,
    /// Capped EMD sweeps that ran to completion across traced queries.
    pub emd_full_sweeps: AtomicU64,
    /// Per-stage scan time of traced `/recommend` queries, indexed by
    /// [`Stage::index`] (populated only while tracing is enabled).
    pub stage_micros: [Histogram; NUM_STAGES],
    /// Per-stage heap bytes allocated by traced `/recommend` queries
    /// (unit: bytes, not micros; zero unless the binary installs the
    /// counting allocator).
    pub stage_alloc_bytes: [Histogram; NUM_STAGES],
    /// Enqueue-to-drain wait of update batches in the maintenance queue.
    pub update_queue_wait: Histogram,
    /// Per-event apply latency, indexed by [`crate::wire::event_kind_index`].
    pub update_apply: [Histogram; UPDATE_KINDS],
    /// Events drained per maintenance round (unit: events, not micros).
    pub update_batch_events: Histogram,
    /// Heap bytes the maintenance writer allocated per drained round
    /// (unit: bytes; zero unless the counting allocator is installed).
    pub update_batch_alloc_bytes: Histogram,
    /// Master-copy clone time before a publish.
    pub snapshot_clone: Histogram,
    /// Epoch-swap publish time.
    pub snapshot_publish: Histogram,
    /// WAL records appended by the maintenance writer.
    pub wal_appends: AtomicU64,
    /// WAL payload bytes appended.
    pub wal_bytes: AtomicU64,
    /// fsyncs issued on the WAL hot path (per the configured policy).
    pub wal_fsyncs: AtomicU64,
    /// WAL/snapshot write failures (durable acks stop on the first).
    pub wal_errors: AtomicU64,
    /// `/update` requests that timed out waiting for a durable ack.
    pub wal_ack_failures: AtomicU64,
    /// Snapshots checkpointed to the data dir.
    pub wal_checkpoints: AtomicU64,
    /// WAL segments retired after a covering checkpoint.
    pub wal_segments_retired: AtomicU64,
    /// Per-record append (frame + write) latency.
    pub wal_append_micros: Histogram,
    /// fsync latency on the WAL hot path.
    pub wal_fsync_micros: Histogram,
    /// Full checkpoint (sync + merge + publish + retire) latency.
    pub wal_checkpoint_micros: Histogram,
    endpoints: [EndpointMetrics; 6],
}

impl Metrics {
    /// Records a worker-written response.
    pub fn record_response(&self, endpoint: Endpoint, status: u16, micros: u64) {
        let ep = &self.endpoints[endpoint.index()];
        ep.hits.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            ep.errors.fetch_add(1, Ordering::Relaxed);
        }
        ep.latency.record(micros);
    }

    /// The per-endpoint slot (rendering and tests).
    pub fn endpoint(&self, endpoint: Endpoint) -> &EndpointMetrics {
        &self.endpoints[endpoint.index()]
    }

    /// Renders the Prometheus text page; live gauge values are sampled by
    /// the caller into `g`.
    pub fn render(&self, g: &Gauges) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(8192);
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let counters: [(&str, u64, &str); 20] = [
            (
                "serve_requests_submitted_total",
                c(&self.submitted),
                "Connections accepted by the acceptor.",
            ),
            (
                "serve_requests_served_total",
                c(&self.served),
                "Responses written by workers.",
            ),
            (
                "serve_requests_rejected_total",
                c(&self.rejected),
                "Fast-fail 503s at admission (queue full).",
            ),
            (
                "serve_requests_deadline_expired_total",
                c(&self.deadline_expired),
                "504s for requests past their deadline before scoring.",
            ),
            (
                "serve_update_batches_enqueued_total",
                c(&self.updates_enqueued),
                "Update batches accepted into the maintenance queue.",
            ),
            (
                "serve_update_batches_rejected_total",
                c(&self.updates_rejected),
                "Update batches bounced with 503 (update queue full).",
            ),
            (
                "serve_events_applied_total",
                c(&self.events_applied),
                "Update events applied by the maintenance writer.",
            ),
            (
                "serve_events_failed_total",
                c(&self.events_failed),
                "Update events the maintenance writer rejected.",
            ),
            (
                "serve_snapshots_published_total",
                c(&self.snapshots_published),
                "Snapshots published by the maintenance writer.",
            ),
            (
                "serve_prune_anchor_total",
                c(&self.prune_anchor),
                "Candidates pruned by the anchor-bound tier in traced queries.",
            ),
            (
                "serve_prune_embed_total",
                c(&self.prune_embed),
                "Candidates pruned by the cached-embedding recheck tier.",
            ),
            (
                "serve_emd_cap_aborted_total",
                c(&self.emd_cap_aborted),
                "Capped EMD sweeps aborted early in traced queries.",
            ),
            (
                "serve_emd_full_sweeps_total",
                c(&self.emd_full_sweeps),
                "Capped EMD sweeps that ran to completion in traced queries.",
            ),
            (
                "serve_wal_records_appended_total",
                c(&self.wal_appends),
                "WAL records appended by the maintenance writer.",
            ),
            (
                "serve_wal_bytes_total",
                c(&self.wal_bytes),
                "WAL payload bytes appended.",
            ),
            (
                "serve_wal_fsyncs_total",
                c(&self.wal_fsyncs),
                "fsyncs issued on the WAL hot path.",
            ),
            (
                "serve_wal_errors_total",
                c(&self.wal_errors),
                "WAL/snapshot write failures (durable acks stop on the first).",
            ),
            (
                "serve_wal_ack_failures_total",
                c(&self.wal_ack_failures),
                "Updates that timed out waiting for a durable ack.",
            ),
            (
                "serve_wal_checkpoints_total",
                c(&self.wal_checkpoints),
                "Snapshots checkpointed to the data dir.",
            ),
            (
                "serve_wal_segments_retired_total",
                c(&self.wal_segments_retired),
                "WAL segments retired after a covering checkpoint.",
            ),
        ];
        for (name, value, help) in counters {
            meta(&mut out, name, help, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
        meta(
            &mut out,
            "serve_query_traces_recorded_total",
            "Query traces pushed into the debug ring.",
            "counter",
        );
        let _ = writeln!(
            out,
            "serve_query_traces_recorded_total {}",
            g.traces_recorded
        );
        meta(
            &mut out,
            "serve_query_traces_dropped_total",
            "Query traces dropped on a ring-slot collision.",
            "counter",
        );
        let _ = writeln!(out, "serve_query_traces_dropped_total {}", g.traces_dropped);

        let gauges: [(&str, u64, &str); 7] = [
            (
                "serve_snapshot_epoch",
                g.epoch,
                "Epoch of the currently published snapshot.",
            ),
            (
                "serve_snapshot_age_micros",
                g.snapshot_age_micros,
                "Microseconds since the last snapshot publication.",
            ),
            (
                "serve_corpus_videos",
                g.videos as u64,
                "Corpus size of the published snapshot.",
            ),
            (
                "serve_admission_queue_depth",
                g.admission_depth as u64,
                "Connections waiting for a worker.",
            ),
            (
                "serve_update_queue_depth",
                g.update_depth as u64,
                "Update batches waiting for the maintenance writer.",
            ),
            (
                "serve_tracing_enabled",
                u64::from(g.tracing_enabled),
                "Whether per-query tracing is enabled (1) or not (0).",
            ),
            (
                "serve_trace_ring_capacity",
                g.trace_capacity as u64,
                "Capacity of the debug trace ring.",
            ),
        ];
        for (name, value, help) in &gauges {
            meta(&mut out, name, help, "gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        meta(
            &mut out,
            "serve_wal_enabled",
            "Whether the durability subsystem is active (1) or not (0).",
            "gauge",
        );
        let _ = writeln!(
            out,
            "serve_wal_enabled {}",
            u64::from(g.durability.is_some())
        );
        if let Some(d) = &g.durability {
            let wal_gauges: [(&str, u64, &str); 7] = [
                (
                    "serve_wal_appended_lsn",
                    d.appended_lsn,
                    "Highest LSN framed into the WAL.",
                ),
                (
                    "serve_wal_acked_lsn",
                    d.acked_lsn,
                    "Highest LSN applied and acknowledged.",
                ),
                (
                    "serve_wal_synced_lsn",
                    d.synced_lsn,
                    "Highest LSN known fsynced to stable storage.",
                ),
                (
                    "serve_wal_snapshot_lsn",
                    d.snapshot_lsn,
                    "LSN covered by the newest published snapshot.",
                ),
                ("serve_wal_segments", d.segments, "Live WAL segment files."),
                (
                    "serve_wal_lag_events",
                    d.appended_lsn.saturating_sub(d.snapshot_lsn),
                    "Appended events not yet covered by a snapshot.",
                ),
                (
                    "serve_wal_failed",
                    u64::from(d.failed),
                    "Whether a WAL write failed and durable acks stopped.",
                ),
            ];
            for (name, value, help) in &wal_gauges {
                meta(&mut out, name, help, "gauge");
                let _ = writeln!(out, "{name} {value}");
            }
        }

        // Process telemetry: the monotone clocks and allocator totals are
        // counters; instantaneous state is gauges.
        let p = &g.process;
        let proc_counters: [(&str, f64, &str); 5] = [
            (
                "serve_process_cpu_user_seconds_total",
                p.utime_secs,
                "User-mode CPU seconds consumed since process start.",
            ),
            (
                "serve_process_cpu_system_seconds_total",
                p.stime_secs,
                "Kernel-mode CPU seconds consumed since process start.",
            ),
            (
                "serve_process_voluntary_ctxt_switches_total",
                p.voluntary_ctxt_switches as f64,
                "Voluntary context switches (blocking waits) since start.",
            ),
            (
                "serve_process_heap_allocated_bytes_total",
                p.heap_total_bytes as f64,
                "Heap bytes requested since start (counting allocator).",
            ),
            (
                "serve_process_heap_allocations_total",
                p.heap_total_allocs as f64,
                "Heap allocations since start (counting allocator).",
            ),
        ];
        for (name, value, help) in &proc_counters {
            meta(&mut out, name, help, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let proc_gauges: [(&str, u64, &str); 5] = [
            (
                "serve_process_rss_bytes",
                p.rss_bytes,
                "Resident set size (VmRSS) in bytes.",
            ),
            (
                "serve_process_threads",
                p.threads,
                "Kernel threads in the process.",
            ),
            (
                "serve_process_heap_live_bytes",
                p.heap_live_bytes,
                "Live heap bytes (counting allocator; 0 when not installed).",
            ),
            (
                "serve_process_heap_live_allocs",
                p.heap_live_allocs,
                "Live heap allocations (counting allocator).",
            ),
            (
                "serve_process_heap_counting",
                u64::from(p.heap_counting),
                "Whether the counting allocator is installed (1) or not (0).",
            ),
        ];
        for (name, value, help) in &proc_gauges {
            meta(&mut out, name, help, "gauge");
            let _ = writeln!(out, "{name} {value}");
        }

        meta(
            &mut out,
            "serve_responses_total",
            "Responses written, by endpoint.",
            "counter",
        );
        for ep in Endpoint::ALL {
            let _ = writeln!(
                out,
                "serve_responses_total{{endpoint=\"{}\"}} {}",
                ep.label(),
                c(&self.endpoint(ep).hits)
            );
        }
        meta(
            &mut out,
            "serve_response_errors_total",
            "4xx/5xx responses written, by endpoint.",
            "counter",
        );
        for ep in Endpoint::ALL {
            let _ = writeln!(
                out,
                "serve_response_errors_total{{endpoint=\"{}\"}} {}",
                ep.label(),
                c(&self.endpoint(ep).errors)
            );
        }
        meta(
            &mut out,
            "serve_latency_micros",
            "Admission-to-response latency, by endpoint.",
            "summary",
        );
        for ep in Endpoint::ALL {
            let label = ep.label();
            let h = &self.endpoint(ep).latency;
            for (q, label_q) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "serve_latency_micros{{endpoint=\"{label}\",quantile=\"{label_q}\"}} {}",
                    h.quantile_micros(q)
                );
            }
            let _ = writeln!(
                out,
                "serve_latency_micros_sum{{endpoint=\"{label}\"}} {}",
                h.sum_micros()
            );
            let _ = writeln!(
                out,
                "serve_latency_micros_count{{endpoint=\"{label}\"}} {}",
                h.count()
            );
        }
        meta(
            &mut out,
            "serve_latency_max_micros",
            "Maximum observed admission-to-response latency, by endpoint.",
            "gauge",
        );
        for ep in Endpoint::ALL {
            let _ = writeln!(
                out,
                "serve_latency_max_micros{{endpoint=\"{}\"}} {}",
                ep.label(),
                self.endpoint(ep).latency.max_micros()
            );
        }

        meta(
            &mut out,
            "serve_query_stage_micros",
            "Per-stage scan time of traced /recommend queries.",
            "histogram",
        );
        for stage in Stage::ALL {
            let labels = format!("stage=\"{}\"", stage.label());
            histogram_samples(
                &mut out,
                "serve_query_stage_micros",
                &labels,
                &self.stage_micros[stage.index()],
            );
        }
        meta(
            &mut out,
            "serve_query_stage_alloc_bytes",
            "Per-stage heap bytes allocated by traced /recommend queries.",
            "histogram",
        );
        for stage in Stage::ALL {
            let labels = format!("stage=\"{}\"", stage.label());
            histogram_samples(
                &mut out,
                "serve_query_stage_alloc_bytes",
                &labels,
                &self.stage_alloc_bytes[stage.index()],
            );
        }
        meta(
            &mut out,
            "serve_update_queue_wait_micros",
            "Enqueue-to-drain wait of update batches.",
            "histogram",
        );
        histogram_samples(
            &mut out,
            "serve_update_queue_wait_micros",
            "",
            &self.update_queue_wait,
        );
        meta(
            &mut out,
            "serve_update_apply_micros",
            "Per-event apply latency, by event kind.",
            "histogram",
        );
        for (i, label) in UPDATE_KIND_LABELS.iter().enumerate() {
            let labels = format!("kind=\"{label}\"");
            histogram_samples(
                &mut out,
                "serve_update_apply_micros",
                &labels,
                &self.update_apply[i],
            );
        }
        meta(
            &mut out,
            "serve_update_batch_events",
            "Events drained per maintenance round.",
            "histogram",
        );
        histogram_samples(
            &mut out,
            "serve_update_batch_events",
            "",
            &self.update_batch_events,
        );
        meta(
            &mut out,
            "serve_update_batch_alloc_bytes",
            "Heap bytes the maintenance writer allocated per drained round.",
            "histogram",
        );
        histogram_samples(
            &mut out,
            "serve_update_batch_alloc_bytes",
            "",
            &self.update_batch_alloc_bytes,
        );
        meta(
            &mut out,
            "serve_snapshot_clone_micros",
            "Master-copy clone time before a publish.",
            "histogram",
        );
        histogram_samples(
            &mut out,
            "serve_snapshot_clone_micros",
            "",
            &self.snapshot_clone,
        );
        meta(
            &mut out,
            "serve_snapshot_publish_micros",
            "Epoch-swap publish time.",
            "histogram",
        );
        histogram_samples(
            &mut out,
            "serve_snapshot_publish_micros",
            "",
            &self.snapshot_publish,
        );
        meta(
            &mut out,
            "serve_wal_append_micros",
            "Per-record WAL append (frame + write) latency.",
            "histogram",
        );
        histogram_samples(
            &mut out,
            "serve_wal_append_micros",
            "",
            &self.wal_append_micros,
        );
        meta(
            &mut out,
            "serve_wal_fsync_micros",
            "fsync latency on the WAL hot path.",
            "histogram",
        );
        histogram_samples(
            &mut out,
            "serve_wal_fsync_micros",
            "",
            &self.wal_fsync_micros,
        );
        meta(
            &mut out,
            "serve_wal_checkpoint_micros",
            "Full checkpoint (sync + merge + publish + retire) latency.",
            "histogram",
        );
        histogram_samples(
            &mut out,
            "serve_wal_checkpoint_micros",
            "",
            &self.wal_checkpoint_micros,
        );
        out
    }
}

fn meta(out: &mut String, name: &str, help: &str, ty: &str) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {ty}");
}

/// Emits one label set of a Prometheus `histogram` family: cumulative
/// `_bucket{le=...}` lines over the non-empty log2 buckets, `+Inf`, `_sum`
/// and `_count`.
fn histogram_samples(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    use std::fmt::Write as _;
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (i, &n) in h.bucket_counts().iter().enumerate() {
        cumulative += n;
        if n > 0 {
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
                Histogram::bucket_upper_bound(i)
            );
        }
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        h.count()
    );
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum_micros());
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum_micros());
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn histogram_quantiles_are_monotone_and_bracket_the_data() {
        let h = Histogram::default();
        for micros in [3u64, 5, 9, 120, 900, 1500, 15_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 7);
        let p50 = h.quantile_micros(0.5);
        let p95 = h.quantile_micros(0.95);
        let p99 = h.quantile_micros(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Upper bounds: each quantile is within 2x of a real observation.
        assert!((9..=2 * 120).contains(&p50), "p50={p50}");
        assert!((15_000 / 2..=2 * 15_000).contains(&p99), "p99={p99}");
        assert_eq!(h.max_micros(), 15_000);
        assert!(h.mean_micros() > 0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_micros(), 0);
        assert_eq!(h.bucket_counts(), [0u64; BUCKETS]);
    }

    #[test]
    fn single_observation_pins_every_quantile() {
        let h = Histogram::default();
        h.record(100);
        // 100 lands in bucket 7 ([64, 128)); every quantile answers its
        // upper bound.
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_micros(q), 127, "q={q}");
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_micros(), 100);
        assert_eq!(h.max_micros(), 100);
    }

    #[test]
    fn zero_observations_land_in_bucket_zero() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
    }

    #[test]
    fn huge_values_saturate_the_top_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 2);
        // The quantile caps at the top bucket's nominal bound; the true max
        // survives separately.
        assert_eq!(
            h.quantile_micros(0.5),
            Histogram::bucket_upper_bound(BUCKETS - 1)
        );
        assert_eq!(h.max_micros(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantiles_stay_monotone_under_random_fills() {
        // Deterministic LCG — the serve crate has no rand dependency.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let h = Histogram::default();
        for _ in 0..1000 {
            h.record(next() % 1_000_000);
        }
        let mut prev = 0u64;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile_micros(q);
            assert!(v >= prev, "quantile {q} went backwards: {v} < {prev}");
            prev = v;
        }
        assert!(h.quantile_micros(1.0) <= 2 * h.max_micros() + 1);
        assert_eq!(h.count(), 1000);
    }

    fn populated() -> Metrics {
        let m = Metrics::default();
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.served.fetch_add(2, Ordering::Relaxed);
        m.rejected.fetch_add(1, Ordering::Relaxed);
        m.record_response(Endpoint::Recommend, 200, 840);
        m.record_response(Endpoint::Recommend, 404, 12);
        m.record_response(Endpoint::Debug, 200, 40);
        m.prune_anchor.fetch_add(50, Ordering::Relaxed);
        m.prune_embed.fetch_add(6, Ordering::Relaxed);
        m.emd_cap_aborted.fetch_add(17, Ordering::Relaxed);
        m.emd_full_sweeps.fetch_add(80, Ordering::Relaxed);
        m.stage_micros[Stage::Emd.index()].record(700);
        m.stage_micros[Stage::Queue.index()].record(3);
        m.stage_alloc_bytes[Stage::Emd.index()].record(4096);
        m.update_batch_alloc_bytes.record(1 << 14);
        m.update_queue_wait.record(44);
        m.update_apply[0].record(10);
        m.update_apply[1].record(2000);
        m.update_batch_events.record(3);
        m.snapshot_clone.record(100);
        m.snapshot_publish.record(1);
        m.wal_appends.fetch_add(12, Ordering::Relaxed);
        m.wal_bytes.fetch_add(480, Ordering::Relaxed);
        m.wal_fsyncs.fetch_add(4, Ordering::Relaxed);
        m.wal_checkpoints.fetch_add(1, Ordering::Relaxed);
        m.wal_segments_retired.fetch_add(2, Ordering::Relaxed);
        m.wal_append_micros.record(11);
        m.wal_fsync_micros.record(900);
        m.wal_checkpoint_micros.record(4000);
        m
    }

    fn gauges() -> Gauges {
        Gauges {
            epoch: 7,
            videos: 42,
            admission_depth: 1,
            update_depth: 0,
            snapshot_age_micros: 5000,
            traces_recorded: 9,
            traces_dropped: 0,
            trace_capacity: 256,
            tracing_enabled: true,
            durability: Some(DurabilitySample {
                appended_lsn: 12,
                acked_lsn: 12,
                synced_lsn: 12,
                snapshot_lsn: 8,
                segments: 2,
                failed: false,
            }),
            process: ProcessSample {
                rss_bytes: 64 << 20,
                utime_secs: 1.5,
                stime_secs: 0.25,
                threads: 9,
                voluntary_ctxt_switches: 123,
                heap_live_bytes: 2048,
                heap_live_allocs: 3,
                heap_total_bytes: 8192,
                heap_total_allocs: 7,
                heap_counting: true,
            },
        }
    }

    #[test]
    fn render_contains_the_accounting_counters() {
        let page = populated().render(&gauges());
        assert!(page.contains("serve_requests_submitted_total 3"));
        assert!(page.contains("serve_requests_served_total 2"));
        assert!(page.contains("serve_requests_rejected_total 1"));
        assert!(page.contains("serve_snapshot_epoch 7"));
        assert!(page.contains("serve_corpus_videos 42"));
        assert!(page.contains("serve_tracing_enabled 1"));
        assert!(page.contains("serve_query_traces_recorded_total 9"));
        assert!(page.contains("serve_responses_total{endpoint=\"recommend\"} 2"));
        assert!(page.contains("serve_response_errors_total{endpoint=\"recommend\"} 1"));
        assert!(page.contains("quantile=\"0.99\""));
        assert!(page.contains("serve_latency_micros_count{endpoint=\"recommend\"} 2"));
        assert!(page.contains("serve_latency_max_micros{endpoint=\"recommend\"} 840"));
        assert!(page.contains("serve_query_stage_micros_bucket{stage=\"emd\""));
        assert!(page.contains("serve_update_apply_micros_count{kind=\"ingest\"} 1"));
        assert!(page.contains("serve_prune_anchor_total 50"));
        assert!(page.contains("serve_prune_embed_total 6"));
        assert!(page.contains("serve_emd_cap_aborted_total 17"));
        assert!(page.contains("serve_emd_full_sweeps_total 80"));
        assert!(page.contains("serve_wal_enabled 1"));
        assert!(page.contains("serve_wal_records_appended_total 12"));
        assert!(page.contains("serve_wal_fsyncs_total 4"));
        assert!(page.contains("serve_wal_appended_lsn 12"));
        assert!(page.contains("serve_wal_snapshot_lsn 8"));
        assert!(page.contains("serve_wal_lag_events 4"));
        assert!(page.contains("serve_wal_fsync_micros_count 1"));
        assert!(page.contains("serve_process_cpu_user_seconds_total 1.5"));
        assert!(page.contains("serve_process_cpu_system_seconds_total 0.25"));
        assert!(page.contains("serve_process_voluntary_ctxt_switches_total 123"));
        assert!(page.contains("serve_process_rss_bytes 67108864"));
        assert!(page.contains("serve_process_threads 9"));
        assert!(page.contains("serve_process_heap_live_bytes 2048"));
        assert!(page.contains("serve_process_heap_allocated_bytes_total 8192"));
        assert!(page.contains("serve_process_heap_counting 1"));
        assert!(page.contains("serve_query_stage_alloc_bytes_bucket{stage=\"emd\""));
        assert!(page.contains("serve_query_stage_alloc_bytes_count{stage=\"emd\"} 1"));
        assert!(page.contains("serve_update_batch_alloc_bytes_count 1"));
    }

    #[test]
    fn wal_gauges_absent_without_durability() {
        let page = populated().render(&Gauges {
            durability: None,
            ..gauges()
        });
        assert!(page.contains("serve_wal_enabled 0"));
        assert!(!page.contains("serve_wal_appended_lsn"));
        // Counters and histograms render regardless (all zero is fine).
        assert!(page.contains("serve_wal_records_appended_total"));
    }

    /// For every sample line in the page, the family it belongs to after
    /// stripping `_bucket`/`_sum`/`_count` suffixes of histogram/summary
    /// families.
    fn family_of(name: &str, typed: &HashMap<String, String>) -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if matches!(typed.get(base).map(String::as_str), Some("histogram"))
                    || (suffix != "_bucket"
                        && matches!(typed.get(base).map(String::as_str), Some("summary")))
                {
                    return base.to_string();
                }
            }
        }
        name.to_string()
    }

    #[test]
    fn exposition_is_prometheus_conformant() {
        let page = populated().render(&gauges());
        let mut helped: HashSet<String> = HashSet::new();
        let mut typed: HashMap<String, String> = HashMap::new();
        for line in page.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                assert!(rest.len() > name.len() + 1, "HELP without text: {line}");
                helped.insert(name);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap().to_string();
                let ty = it.next().expect("TYPE has a type").to_string();
                assert!(
                    ["counter", "gauge", "histogram", "summary"].contains(&ty.as_str()),
                    "unknown type {ty}"
                );
                assert!(
                    typed.insert(name.clone(), ty).is_none(),
                    "family {name} declared twice"
                );
            }
        }
        for line in page
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let name = line.split(['{', ' ']).next().unwrap();
            let family = family_of(name, &typed);
            assert!(typed.contains_key(&family), "no # TYPE for {name}");
            assert!(helped.contains(&family), "no # HELP for {name}");
            if typed[&family] == "counter" {
                assert!(family.ends_with("_total"), "counter {family} not _total");
            }
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
        // Histogram internals: cumulative buckets are monotone and +Inf
        // equals _count, for an unlabelled and a labelled family.
        for (family, label_prefix) in [
            ("serve_update_queue_wait_micros", ""),
            ("serve_query_stage_micros", "stage=\"emd\","),
        ] {
            let bucket_prefix = format!("{family}_bucket{{{label_prefix}");
            let mut last = 0u64;
            let mut inf = None;
            for line in page.lines().filter(|l| l.starts_with(&bucket_prefix)) {
                let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(value >= last, "non-cumulative bucket: {line}");
                last = value;
                if line.contains("le=\"+Inf\"") {
                    inf = Some(value);
                }
            }
            let count_prefix = if label_prefix.is_empty() {
                format!("{family}_count ")
            } else {
                format!("{family}_count{{{}}} ", label_prefix.trim_end_matches(','))
            };
            let count: u64 = page
                .lines()
                .find(|l| l.starts_with(&count_prefix))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("no _count for {family}"));
            assert_eq!(inf, Some(count), "{family}: +Inf != _count");
        }
    }
}
