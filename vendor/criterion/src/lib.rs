//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the bench crate uses — `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function` / `benchmark_group`,
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `BenchmarkId`,
//! `BatchSize`, `black_box` — with a simple timing loop: a short warm-up,
//! then timed batches until a wall-clock budget is spent, reporting the mean
//! time per iteration on stdout. No statistics, plots or baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup cost — accepted, not acted on.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs closures under timing.
pub struct Bencher {
    /// (total time, total iterations) accumulated by the last `iter` call.
    measured: Option<(Duration, u64)>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            measured: None,
            budget,
        }
    }

    /// Times `routine` until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch-size calibration: run once, then size batches to
        // ~10 runs of the routine.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.measured = Some((total, iters));
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }
}

fn report(id: &str, measured: Option<(Duration, u64)>) {
    match measured {
        Some((total, iters)) if iters > 0 => {
            let per = total.as_secs_f64() / iters as f64;
            println!(
                "{id:<48} time: {:>12}   ({iters} iterations)",
                format_time(per)
            );
        }
        _ => println!("{id:<48} (no measurement)"),
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: the stub is for smoke-timing, not statistics.
        Self {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        report(&id, bencher.measured);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("— group {name} —");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// A named group; ids are reported as `group/id`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub keeps its own budget.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher);
        report(&full, bencher.measured);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher, input);
        report(&full, bencher.measured);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            budget: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_inputs() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }
}
