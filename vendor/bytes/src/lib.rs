//! Offline stub of the `bytes` crate — just the surface the toy codec uses:
//! [`Bytes`]/[`BytesMut`] with the little-endian [`Buf`]/[`BufMut`] accessors.
//! Backed by a plain `Vec<u8>` plus a read cursor; no refcounted slabs.

use std::ops::Deref;

/// An immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Remaining (unconsumed) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the sub-range `range` of the remaining bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow: {} < {N}", self.len());
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

/// Read-side accessors (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume and return `n` bytes.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(self.len() >= n, "buffer underflow: {} < {n}", self.len());
        let out = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Bytes { data: out, pos: 0 }
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// A growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Write-side accessors (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(0x0123_4567_89ab_cdef);
        w.put_f64_le(6.5);
        let mut r = w.freeze();
        assert_eq!(&r.copy_to_bytes(4)[..], b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_f64_le(), 6.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(1..4)[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32_le();
    }
}
