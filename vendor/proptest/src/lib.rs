//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! tuple strategies, `prop::collection::vec`, [`Just`], `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` macros returning
//! [`TestCaseError`]. Cases are generated from a deterministic per-test RNG
//! (seeded by FNV-1a of the test name); there is **no shrinking** — a failure
//! reports the case index so it can be replayed by re-running the test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use rand as test_rand;

/// Runner configuration — only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Deterministic RNG for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name, so sibling tests get distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for core::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection-size specification: an exact count or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// A `Vec` of values from `element`, sized within `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.lo..self.size.hi);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The proptest prelude: everything the test files import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

/// Declares property tests. Supports the `#![proptest_config(..)]` header
/// and `fn name(pattern in strategy, ...) { body }` items; the body may use
/// `?` on `Result<_, TestCaseError>` and the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        $vis:vis fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        $vis fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3..10usize, y in -2.0..2.0f64, b in 0..=255u8) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _always: u8 = b;
        }

        #[test]
        fn tuples_and_vecs((n, v) in (1..5usize, prop::collection::vec(0..100u32, 1..8))) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn map_and_flat_map(len in (1..6usize).prop_flat_map(|n| {
            prop::collection::vec(Just(n), n).prop_map(|v| v.len())
        })) {
            prop_assert!((1..6).contains(&len));
        }
    }

    #[test]
    fn fixed_size_vec() {
        let strat = prop::collection::vec(0..10u32, 4);
        let mut rng = crate::test_rng("fixed_size_vec");
        for _ in 0..20 {
            assert_eq!(crate::Strategy::generate(&strat, &mut rng).len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        mod inner {
            #[allow(unused_imports)]
            use crate::prelude::*;
            proptest! {
                #[test]
                pub fn always_fails(x in 0..10u32) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
        }
        inner::always_fails();
    }
}
