//! Offline stub of the `rand` crate API surface used by this workspace.
//!
//! The build container has no network access and no vendored registry, so
//! the real `rand` cannot be fetched. This crate re-implements exactly the
//! subset the workspace uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng` methods `gen`, `gen_range`, `gen_bool` — over a
//! xoshiro256++ generator seeded via SplitMix64. Streams differ from the
//! real `rand`, but every consumer in this workspace only relies on
//! determinism-per-seed, not on specific values.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it over the full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s.iter().all(|&w| w == 0) {
            // All-zero state is a fixed point of xoshiro; nudge it.
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable from a bounded range, mirroring the real
/// crate's `SampleUniform` so `gen_range` type inference behaves the same
/// (the range's element type alone determines `T`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128)
                    .wrapping_sub(lo as i128) as u128
                    + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Full-width inclusive range.
                    return u128::sample_standard(rng) as $t;
                }
                let draw = u128::sample_standard(rng) % span;
                (lo as i128).wrapping_add(draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let span = (hi - lo).wrapping_add(if inclusive { 1 } else { 0 });
        if span == 0 {
            return u128::sample_standard(rng);
        }
        lo + u128::sample_standard(rng) % span
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// The user-facing random-value methods.
pub trait Rng: RngCore {
    /// A uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&x));
            let y: usize = rng.gen_range(0..10);
            assert!(y < 10);
            let f: f64 = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&f));
            let u: u128 = rng.gen_range(0..300u128);
            assert!(u < 300);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
