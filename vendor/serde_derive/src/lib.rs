//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many types but never
//! serializes anything (no serde_json/bincode in the tree), so the derives
//! can expand to nothing. If real serialization is ever needed, replace the
//! vendored `serde`/`serde_derive` pair with the real crates.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
