//! Offline stub of the `serde` facade.
//!
//! Exposes `Serialize`/`Deserialize` as (a) marker traits and (b) the no-op
//! derive macros from the vendored `serde_derive`, which is all the
//! workspace needs: types are annotated for future serialization but nothing
//! in the tree serializes today.

/// Marker stand-in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker stand-in for `serde::Deserialize`.
pub trait DeserializeMarker {}

pub use serde_derive::{Deserialize, Serialize};
