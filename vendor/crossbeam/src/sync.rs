//! Concurrency facade for the model-checked [`channel`](crate::channel)
//! module: plain `std` re-exports in the normal build, swapped for
//! `viderec-check`'s instrumented shim when the same source file is compiled
//! under `--cfg viderec_check`.

pub use std::sync::{Arc, Condvar, Mutex};
pub use std::time::Instant;
