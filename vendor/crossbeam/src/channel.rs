//! Bounded MPMC channel (subset of `crossbeam-channel`) over
//! `Mutex` + `Condvar`, with crossbeam-compatible disconnect semantics:
//! queued messages are always delivered before a disconnect surfaces, and
//! dropping the last half wakes every blocked peer.
//!
//! The primitives are imported from `super::sync` (plain `std` re-exports in
//! the normal build) so that `viderec-check` can compile this exact file
//! against its instrumented shim (under `--cfg viderec_check`) and explore
//! the send/recv/disconnect interleavings exhaustively. Keep this file free
//! of `#[cfg(test)]` modules — the unit tests live in `lib.rs`.

use super::sync::{Arc, Condvar, Instant, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// Error of [`Sender::try_send`]: the message comes back.
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

/// Error of [`Sender::send`]: every receiver is gone; the message comes
/// back.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

/// Error of [`Receiver::recv`]: every sender is gone and the queue is
/// drained.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error of [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The queue is currently empty (senders may still produce).
    Empty,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// Error of [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message is enqueued (wakes receivers) or when the
    /// last sender leaves.
    not_empty: Condvar,
    /// Signalled when a slot frees up (wakes blocked senders) or when the
    /// last receiver leaves.
    not_full: Condvar,
    capacity: usize,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half; cheap to clone.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cheap to clone (MPMC: clones *share* the queue,
/// they do not broadcast).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with room for `capacity` in-flight messages.
/// Like `crossbeam-channel`, a zero capacity is not supported by this
/// stub (the workspace never uses rendezvous channels).
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded(0) rendezvous channels not supported");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues without blocking; on a full queue the message is
    /// returned in [`TrySendError::Full`].
    // viderec-lint: allow(serve-no-panic) — the mutex guards plain
    // queue/counter edits that cannot panic while held, so `unwrap()` only
    // re-raises a panic already unwinding another thread.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until a slot frees up (or every receiver is gone).
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            if inner.queue.len() < self.shared.capacity {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).unwrap();
        }
    }

    /// Messages currently queued.
    // viderec-lint: allow(serve-no-panic) — the mutex guards plain
    // queue/counter edits that cannot panic while held, so `unwrap()` only
    // re-raises a panic already unwinding another thread.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity (`Some`, matching crossbeam's bounded case).
    pub fn capacity(&self) -> Option<usize> {
        Some(self.shared.capacity)
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; `Err` once every sender is gone
    /// *and* the queue is drained (queued messages are always delivered
    /// first, as in `crossbeam-channel`).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    // viderec-lint: allow(serve-no-panic) — the mutex guards plain
    // queue/counter edits that cannot panic while held, so `unwrap()` only
    // re-raises a panic already unwinding another thread.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, timed_out) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
            if timed_out.timed_out() && inner.queue.is_empty() {
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Messages currently queued.
    // viderec-lint: allow(serve-no-panic) — the mutex guards plain
    // queue/counter edits that cannot panic while held, so `unwrap()` only
    // re-raises a panic already unwinding another thread.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity (`Some`, matching crossbeam's bounded case).
    pub fn capacity(&self) -> Option<usize> {
        Some(self.shared.capacity)
    }
}

impl<T> Clone for Sender<T> {
    // viderec-lint: allow(serve-no-panic) — the mutex guards plain
    // queue/counter edits that cannot panic while held, so `unwrap()` only
    // re-raises a panic already unwinding another thread.
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    // viderec-lint: allow(serve-no-panic) — the mutex guards plain
    // queue/counter edits that cannot panic while held, so `unwrap()` only
    // re-raises a panic already unwinding another thread.
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Wake every blocked receiver so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            // Wake every blocked sender so they observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}
