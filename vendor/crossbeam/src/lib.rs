//! Offline stub of the `crossbeam` scoped-thread API used by this workspace,
//! implemented over `std::thread::scope` (stable since Rust 1.63). Only
//! `crossbeam::thread::scope` / `Scope::spawn` / `ScopedJoinHandle::join`
//! are provided — the workspace uses nothing else.

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: hands out scoped spawns whose
    /// closures receive the scope again (for nested spawning).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope, matching
        /// crossbeam's `|_| ...` signature at call sites.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns. Always `Ok` — panics in
    /// unjoined threads propagate as in `std::thread::scope`, matching how
    /// the workspace uses the crossbeam `Result` (it only `.expect`s it).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_passed_scope() {
        let n: u32 = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
