//! Offline stub of the `crossbeam` APIs used by this workspace:
//!
//! * [`thread`] — scoped threads over `std::thread::scope` (stable since
//!   Rust 1.63): `crossbeam::thread::scope` / `Scope::spawn` /
//!   `ScopedJoinHandle::join`;
//! * [`channel`] — a bounded MPMC channel over `Mutex` + `Condvar`,
//!   API-compatible with the `crossbeam-channel` subset the serving layer
//!   needs: [`channel::bounded`], `Sender`/`Receiver` (both `Clone`),
//!   `try_send`/`send`/`recv`/`try_recv`/`recv_timeout`, plus the
//!   `len`/`is_empty`/`capacity` observers.

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: hands out scoped spawns whose
    /// closures receive the scope again (for nested spawning).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope, matching
        /// crossbeam's `|_| ...` signature at call sites.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns. Always `Ok` — panics in
    /// unjoined threads propagate as in `std::thread::scope`, matching how
    /// the workspace uses the crossbeam `Result` (it only `.expect`s it).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

/// Bounded MPMC channel (subset of `crossbeam-channel`).
pub mod channel;

pub(crate) mod sync;

#[cfg(test)]
mod channel_tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn try_send_full_returns_message() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1u32).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(tx.capacity(), Some(1));
    }

    #[test]
    fn disconnection_is_observed_after_drain() {
        let (tx, rx) = bounded(2);
        tx.try_send(7u8).unwrap();
        drop(tx);
        // Queued messages are delivered before the disconnect surfaces.
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(3u8), Err(SendError(3)));
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.try_send(9u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn blocked_sender_wakes_on_recv() {
        let (tx, rx) = bounded(1);
        tx.try_send(0u32).unwrap();
        crate::thread::scope(|s| {
            let tx2 = tx.clone();
            let h = s.spawn(move |_| tx2.send(1).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(0));
            h.join().unwrap();
            assert_eq!(rx.recv(), Ok(1));
        })
        .unwrap();
    }

    #[test]
    fn blocked_receiver_wakes_on_last_sender_drop() {
        let (tx, rx) = bounded::<u8>(1);
        crate::thread::scope(|s| {
            let h = s.spawn(|_| rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        })
        .unwrap();
    }

    #[test]
    fn mpmc_partitions_work_exactly_once() {
        let (tx, rx) = bounded::<u32>(8);
        let total: u32 = crate::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut sum = 0u32;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for v in 1..=100u32 {
                tx.send(v).unwrap();
            }
            drop(tx);
            drop(rx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 5050, "every message consumed exactly once");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_passed_scope() {
        let n: u32 = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
