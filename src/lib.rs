//! # viderec
//!
//! A from-scratch Rust implementation of *Online Video Recommendation in
//! Sharing Community* (Zhou, Cao, Chen, Huang, Zhang, Wang — SIGMOD 2015):
//! content–social fused video recommendation where the query is a clicked
//! video, no viewer profile required.
//!
//! This crate is the facade over the workspace; see the member crates for
//! the subsystems:
//!
//! | crate | role |
//! |---|---|
//! | [`video`] | frames, toy codec, synthetic videos, editing transforms, shot detection |
//! | [`emd`] | exact EMD (transportation simplex, 1-D closed form), κJ/DTW/ERP |
//! | [`signature`] | video cuboid signatures and series |
//! | [`social`] | social descriptors, UIG, sub-community extraction (SAR), maintenance |
//! | [`index`] | shift-add-xor chained hashing, inverted files, LSB forest |
//! | [`core`] | the recommender: FJ fusion, strategies, KNN, update wiring |
//! | [`eval`] | community simulator, metrics, experiment runners |
//!
//! ## Quickstart
//!
//! ```
//! use viderec::core::{Recommender, RecommenderConfig, QueryVideo, Strategy};
//! use viderec::eval::community::{Community, CommunityConfig};
//!
//! // A small synthetic sharing community (deterministic in the seed).
//! let community = Community::generate(CommunityConfig::tiny(7));
//! let recommender =
//!     Recommender::build(RecommenderConfig { k_subcommunities: 10, ..Default::default() },
//!                        community.source_corpus())
//!         .expect("valid corpus");
//!
//! // The user clicks a video; recommend relevant ones with the full
//! // content-social fusion.
//! let clicked = community.query_videos()[0];
//! let query = QueryVideo {
//!     series: recommender.series_of(clicked).unwrap().clone(),
//!     users: recommender.users_of(clicked).unwrap().to_vec(),
//! };
//! let recs = recommender.recommend_excluding(Strategy::CsfSarH, &query, 5, &[clicked]);
//! assert!(!recs.is_empty());
//!
//! // Batch workloads: the sharded + pruned engine answers many queries at
//! // once, with results identical to the sequential path per query.
//! use viderec::core::ParallelRecommender;
//! let parallel = ParallelRecommender::new(&recommender);
//! let batch = parallel.recommend_batch(Strategy::CsfSarH, std::slice::from_ref(&query), 5);
//! assert_eq!(batch[0], recommender.recommend(Strategy::CsfSarH, &query, 5));
//! ```

pub use viderec_core as core;
pub use viderec_emd as emd;
pub use viderec_eval as eval;
pub use viderec_index as index;
pub use viderec_signature as signature;
pub use viderec_social as social;
pub use viderec_video as video;
